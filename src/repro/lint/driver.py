"""The lint driver: run every registered rule over a project tree.

:func:`lint_project` is the core (parse -> rules -> suppressions) and works
on any :class:`~repro.lint.walker.ProjectContext`, including the in-memory
ones the tests build; :func:`run_lint` adds the filesystem entry point and
baseline handling the ``kecss lint`` CLI verb sits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

# Importing the rules module populates the registry.
import repro.lint.rules  # noqa: F401
from repro.lint.registry import select_rules
from repro.lint.report import (
    Finding,
    apply_baseline,
    apply_suppressions,
)
from repro.lint.walker import ProjectContext, load_project

__all__ = ["LintResult", "lint_project", "run_lint", "default_package_dir"]


@dataclass
class LintResult:
    """Outcome of one lint run, split by baseline status."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        return sorted(
            [*self.new, *self.baselined],
            key=lambda f: (f.path, f.line, f.col, f.code),
        )

    @property
    def exit_code(self) -> int:
        """0 clean (baselined findings do not fail), 1 on new findings --
        the ``kecss regress`` convention (2 is reserved for usage errors)."""
        return 1 if self.new else 0


def lint_project(
    project: ProjectContext, select: Iterable[str] | None = None
) -> list[Finding]:
    """Run the (selected) rules over *project*; inline suppressions applied."""
    findings: list[Finding] = []
    for rule in select_rules(select):
        if rule.scope == "module":
            for _, ctx in sorted(project.modules.items()):
                findings.extend(rule.check(ctx))
        else:
            findings.extend(rule.check(project))
    lines_by_path = {
        ctx.relpath: ctx.lines for ctx in project.modules.values()
    }
    findings = apply_suppressions(findings, lines_by_path)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def default_package_dir() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_lint(
    package_dir: Path | None = None,
    select: Iterable[str] | None = None,
    baseline: Mapping[str, dict] | None = None,
) -> LintResult:
    """Lint the package tree at *package_dir* against *baseline*."""
    if package_dir is None:
        package_dir = default_package_dir()
    project = load_project(Path(package_dir))
    findings = lint_project(project, select=select)
    new, grandfathered = apply_baseline(findings, baseline or {})
    return LintResult(new=new, baselined=grandfathered)
