"""Findings, suppressions, the committed baseline, and report rendering.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* -- a short content hash of ``(code, path, symbol, message)``,
deliberately excluding the line number -- identifies the finding across
unrelated edits, so baseline entries survive code motion without pinning
line numbers.

Three mechanisms silence a finding, in increasing order of ceremony:

* fixing the code (preferred);
* an inline ``# repro: disable=CODE[,CODE...]`` comment on the offending
  line, ideally followed by a justification (``-- reason``);
* an entry in the committed baseline file (``lint-baseline.json``),
  written by ``kecss lint --write-baseline`` -- for grandfathered findings
  that are real but not yet worth fixing.  Baselined findings are still
  reported (as "baselined") but do not fail the run.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint.registry import RULES

__all__ = [
    "Finding",
    "suppressed_codes",
    "apply_suppressions",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
]

#: ``# repro: disable=DET001,CACHE001 -- optional justification``
_SUPPRESSION = re.compile(r"#\s*repro:\s*disable=([A-Z0-9_,\s]+)")

#: Schema version of the baseline file.
BASELINE_VERSION = 1


@dataclass
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching; excludes the line number."""
        payload = "|".join((self.code, self.path, self.symbol, self.message))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["fingerprint"] = self.fingerprint
        return payload


def suppressed_codes(line: str) -> frozenset[str]:
    """The rule codes an inline comment on *line* suppresses."""
    match = _SUPPRESSION.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip()
    )


def apply_suppressions(
    findings: Iterable[Finding], lines_by_path: Mapping[str, list[str]]
) -> list[Finding]:
    """Drop findings whose source line carries a matching disable comment."""
    kept: list[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, [])
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        if finding.code not in suppressed_codes(line):
            kept.append(finding)
    return kept


def load_baseline(path: Path) -> dict[str, dict]:
    """Fingerprint -> baseline entry from the committed baseline file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {payload.get('version')!r}; "
            f"this linter writes version {BASELINE_VERSION}"
        )
    entries = payload.get("findings", [])
    return {entry["fingerprint"]: entry for entry in entries}


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Persist *findings* as the new baseline; returns the entry count.

    Entries carry an empty ``justification`` field for humans to fill in --
    review of the committed diff is the workflow, not this function.
    """
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "code": finding.code,
            "path": finding.path,
            "symbol": finding.symbol,
            "message": finding.message,
            "justification": "",
        }
        for finding in findings
    ]
    entries.sort(key=lambda entry: (entry["path"], entry["code"], entry["fingerprint"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding], baseline: Mapping[str, dict]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, baselined)``, marking the latter."""
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        if finding.fingerprint in baseline:
            finding.baselined = True
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def _summary(new: list[Finding], baselined: list[Finding]) -> dict:
    per_rule: dict[str, int] = {}
    for finding in [*new, *baselined]:
        per_rule[finding.code] = per_rule.get(finding.code, 0) + 1
    return {
        "total": len(new) + len(baselined),
        "new": len(new),
        "baselined": len(baselined),
        "rules": dict(sorted(per_rule.items())),
    }


def render_text(new: list[Finding], baselined: list[Finding]) -> str:
    """The human report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in sorted(
        [*new, *baselined], key=lambda f: (f.path, f.line, f.col, f.code)
    ):
        suffix = ""
        if finding.symbol:
            suffix = f" [{finding.symbol}]"
        if finding.baselined:
            suffix += " (baselined)"
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.code} {finding.message}{suffix}"
        )
    summary = _summary(new, baselined)
    if summary["total"] == 0:
        lines.append("kecss lint: no findings")
    else:
        per_rule = ", ".join(
            f"{code}:{count}" for code, count in summary["rules"].items()
        )
        lines.append(
            f"kecss lint: {summary['total']} finding"
            f"{'' if summary['total'] == 1 else 's'} "
            f"({summary['new']} new, {summary['baselined']} baselined) [{per_rule}]"
        )
    return "\n".join(lines)


def render_json(new: list[Finding], baselined: list[Finding]) -> str:
    """The machine report consumed by the CI gate."""
    payload = {
        "findings": [
            finding.to_dict()
            for finding in sorted(
                [*new, *baselined], key=lambda f: (f.path, f.line, f.col, f.code)
            )
        ],
        "summary": _summary(new, baselined),
        "rules": {
            code: {"title": rule.title, "scope": rule.scope}
            for code, rule in sorted(RULES.items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
