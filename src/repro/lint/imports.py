"""The intra-package import graph and the ``register_trial`` declarations.

This is the substrate of the CACHE001 cache-soundness rule: the engine's
replay cache keys trial results by a code version derived from the modules an
experiment *declares* (``register_trial(name, modules=...)``, hashed by
:mod:`repro.analysis.code_version`).  The declaration is a promise -- "my
behaviour is a function of these files" -- and nothing at runtime checks it.
This module rebuilds both sides of that promise statically:

* :class:`ImportGraph` -- module -> imported project modules, from the parsed
  import tables (``TYPE_CHECKING`` imports excluded: they never execute);
* :func:`trial_declarations` -- every ``@register_trial(...)`` decorated
  function in the tree, with its declared ``modules=`` tuple resolved
  (including tuples bound to module-level constants such as
  ``_TAP_MODULES``);
* :func:`trial_closure` -- the modules a trial can actually reach: the names
  referenced in its body (resolved through same-module helpers, so a trial
  calling a private ``_instance`` helper inherits that helper's imports),
  expanded transitively through the import graph.

Two classes of import deliberately contribute **no** graph edges, because
either would make the closure -- and therefore the check -- vacuous:

* the trial's own defining module's imports (experiment modules import every
  solver at module level; the fine-grained name scan over the trial body
  replaces those edges);
* function-local (lazy) imports in *other* modules (the engine's
  registry-resolution imports form a cycle through
  ``repro.analysis.experiments``, which imports everything).  A lazy import
  in the trial body itself still counts -- the name scan resolves through
  every binding of the defining module, including function-local ones.

Implicit ancestor-package ``__init__`` execution is likewise out of scope
(see ``docs/lint.md`` for the full soundness boundary).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.walker import ModuleContext, ProjectContext, dotted_name

__all__ = [
    "ImportGraph",
    "TrialDeclaration",
    "build_import_graph",
    "trial_declarations",
    "trial_closure",
    "expand_declaration",
    "is_register_trial_decorator",
]


@dataclass
class ImportGraph:
    """Directed module -> module edges within one project."""

    edges: dict[str, set[str]]

    def closure(
        self, seeds: Iterable[str], skip_edges_of: frozenset[str] = frozenset()
    ) -> set[str]:
        """Transitive closure of *seeds*; ``skip_edges_of`` members are kept
        in the closure but their outgoing edges are not followed."""
        reached: set[str] = set()
        stack = list(seeds)
        while stack:
            module = stack.pop()
            if module in reached:
                continue
            reached.add(module)
            if module in skip_edges_of:
                continue
            stack.extend(self.edges.get(module, ()) - reached)
        return reached


def build_import_graph(project: ProjectContext) -> ImportGraph:
    """Resolve every executable import to a project module and build the graph."""
    edges: dict[str, set[str]] = {}
    for name, ctx in project.modules.items():
        targets = edges.setdefault(name, set())
        for binding in ctx.imports:
            if binding.type_checking or binding.function_local:
                continue
            resolved = project.resolve_import(binding)
            if resolved is not None and resolved != name:
                targets.add(resolved)
    return ImportGraph(edges)


def is_register_trial_decorator(decorator: ast.expr) -> bool:
    """True for ``@register_trial(...)`` (bare or attribute-qualified)."""
    if not isinstance(decorator, ast.Call):
        return False
    name = dotted_name(decorator.func)
    return name is not None and name.split(".")[-1] == "register_trial"


@dataclass
class TrialDeclaration:
    """One ``@register_trial(...)`` site, statically extracted."""

    trial: str
    function: str
    module: str
    lineno: int
    #: The declared ``modules=`` tuple; ``None`` means the experiment relies
    #: on the conservative hash-everything default, which cannot go stale.
    modules: tuple[str, ...] | None


def _constant_str_tuple(node: ast.expr, ctx: ModuleContext) -> tuple[str, ...] | None:
    """Evaluate *node* as a tuple of string constants, following one level of
    module-level ``Name`` indirection (``modules=_TAP_MODULES``)."""
    if isinstance(node, ast.Name):
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == node.id:
                        return _constant_str_tuple(stmt.value, ctx)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name) and stmt.target.id == node.id:
                    return _constant_str_tuple(stmt.value, ctx)
        return None
    if isinstance(node, (ast.Tuple, ast.List)):
        values: list[str] = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            values.append(element.value)
        return tuple(values)
    return None


def trial_declarations(project: ProjectContext) -> list[TrialDeclaration]:
    """Every ``@register_trial``-decorated function in the project."""
    declarations: list[TrialDeclaration] = []
    for name, ctx in sorted(project.modules.items()):
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in stmt.decorator_list:
                if not is_register_trial_decorator(decorator):
                    continue
                call = decorator
                if not (
                    call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    continue
                modules: tuple[str, ...] | None = None
                for keyword in call.keywords:
                    if keyword.arg == "modules":
                        if isinstance(keyword.value, ast.Constant) and (
                            keyword.value.value is None
                        ):
                            modules = None
                        else:
                            modules = _constant_str_tuple(keyword.value, ctx)
                declarations.append(
                    TrialDeclaration(
                        trial=call.args[0].value,
                        function=stmt.name,
                        module=name,
                        lineno=decorator.lineno,
                        modules=modules,
                    )
                )
    return declarations


def _module_level_definitions(ctx: ModuleContext) -> dict[str, ast.AST]:
    """Top-level name -> defining node (functions, classes, assignments)."""
    definitions: dict[str, ast.AST] = {}
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            definitions[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    definitions[target.id] = stmt
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            definitions[stmt.target.id] = stmt
    return definitions


def _referenced_names(node: ast.AST, skip_decorators: bool) -> set[str]:
    names: set[str] = set()
    if skip_decorators and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots: list[ast.AST] = [*node.args.defaults, *node.args.kw_defaults, *node.body]
        roots = [root for root in roots if root is not None]
    else:
        roots = [node]
    for root in roots:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


def trial_closure(
    project: ProjectContext,
    graph: ImportGraph,
    declaration: TrialDeclaration,
) -> set[str]:
    """The project modules *declaration*'s trial function can reach.

    Seeds are the defining module plus every import binding the trial body
    references, chased recursively through same-module helper definitions;
    the seeds are then expanded through the import graph.  Decorators are
    excluded from the trial function's own scan (they run at registration
    time, not per trial) but helper definitions are scanned whole.
    """
    ctx = project.modules[declaration.module]
    definitions = _module_level_definitions(ctx)
    trial_node = definitions.get(declaration.function)
    bindings = {
        binding.local: binding
        for binding in ctx.imports
        if not binding.type_checking
    }

    seen_definitions: set[str] = set()
    seeds: set[str] = {declaration.module}
    pending: list[tuple[ast.AST, bool]] = []
    if trial_node is not None:
        pending.append((trial_node, True))
    while pending:
        node, skip_decorators = pending.pop()
        for name in _referenced_names(node, skip_decorators):
            if name in bindings:
                resolved = project.resolve_import(bindings[name])
                if resolved is not None:
                    seeds.add(resolved)
            elif name in definitions and name not in seen_definitions:
                if name == declaration.function:
                    continue
                seen_definitions.add(name)
                pending.append((definitions[name], False))
    return graph.closure(seeds, skip_edges_of=frozenset({declaration.module}))


def expand_declaration(entry: str, project: ProjectContext) -> set[str] | None:
    """The project modules covered by one ``modules=`` entry.

    Mirrors :func:`repro.analysis.code_version.module_files`: a package name
    covers itself and every submodule, a module name covers that file only.
    Returns ``None`` for names that resolve to nothing in the project (the
    declaration would fail to hash at runtime).
    """
    covered = {name for name in project.modules if name.startswith(entry + ".")}
    if entry in project.modules:
        covered.add(entry)
    return covered or None
