"""The lint rule registry, mirroring the solver/backend registry pattern.

Rules plug in by code the same way execution backends plug in by name
(:mod:`repro.analysis.backends`): a ``@register_rule("DET001", ...)``
decorator adds the checker to :data:`RULES` without the driver knowing any
rule concretely, so downstream forks can register project-specific rules and
``kecss lint --select`` can subset them.

Two scopes exist:

* ``"module"`` -- the checker is called once per :class:`ModuleContext` and
  sees only that file (all DET rules);
* ``"project"`` -- the checker is called once with the whole
  :class:`ProjectContext` and may cross files (CACHE001 walks the import
  graph).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["Rule", "RULES", "register_rule", "select_rules"]

#: Valid rule scopes.
SCOPES = ("module", "project")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    title: str
    scope: str
    check: Callable
    rationale: str = field(default="", compare=False)


#: Rule code -> :class:`Rule`.  ``register_rule`` adds entries.
RULES: dict[str, Rule] = {}


def register_rule(code: str, title: str, scope: str = "module"):
    """Register the decorated checker under *code*.

    The checker's docstring becomes the rule's rationale, shown by
    ``kecss lint --list-rules`` and quoted in ``docs/lint.md``.
    """
    if scope not in SCOPES:
        raise ValueError(f"unknown rule scope {scope!r}; expected one of {SCOPES}")

    def decorate(check):
        RULES[code] = Rule(
            code=code,
            title=title,
            scope=scope,
            check=check,
            rationale=inspect.getdoc(check) or "",
        )
        return check

    return decorate


def select_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """The rules to run, in code order; *select* subsets by code."""
    if select is None:
        return [RULES[code] for code in sorted(RULES)]
    chosen = []
    for code in select:
        if code not in RULES:
            raise KeyError(
                f"unknown lint rule {code!r}; known rules: {sorted(RULES)}"
            )
        chosen.append(RULES[code])
    return sorted(chosen, key=lambda rule: rule.code)
