"""repro.lint: determinism & cache-soundness static analysis (``kecss lint``).

Every guarantee this reproduction makes -- bit-identical kernel/oracle
parity, replay-safe caches keyed by content-hashed code versions, identical
aggregates across execution backends -- is a determinism invariant that the
runtime checks (``diff-*`` sweeps, ``kecss regress``) only verify on the
seeds actually swept.  This package checks the *sources* of nondeterminism
statically, before execution, AST-only (the analysed tree is never
imported):

* a rule registry mirroring the solver/backend registries
  (:mod:`repro.lint.registry`), shipped with the DET00x determinism family
  and the CACHE001 cache-soundness rule (:mod:`repro.lint.rules`);
* an intra-package import graph and ``register_trial`` declaration
  extractor (:mod:`repro.lint.imports`) powering CACHE001;
* inline ``# repro: disable=CODE`` suppressions and a committed baseline
  file for grandfathered findings (:mod:`repro.lint.report`).

See ``docs/lint.md`` for the rule catalogue and workflows.
"""

from repro.lint.driver import LintResult, default_package_dir, lint_project, run_lint
from repro.lint.imports import (
    ImportGraph,
    TrialDeclaration,
    build_import_graph,
    expand_declaration,
    trial_closure,
    trial_declarations,
)
from repro.lint.registry import RULES, Rule, register_rule, select_rules
from repro.lint.report import (
    Finding,
    apply_baseline,
    apply_suppressions,
    load_baseline,
    render_json,
    render_text,
    suppressed_codes,
    write_baseline,
)
from repro.lint.rules import EXACT_MODULES
from repro.lint.walker import (
    ImportBinding,
    ModuleContext,
    ProjectContext,
    load_project,
    project_from_sources,
)

__all__ = [
    "LintResult",
    "lint_project",
    "run_lint",
    "default_package_dir",
    "ImportGraph",
    "TrialDeclaration",
    "build_import_graph",
    "expand_declaration",
    "trial_closure",
    "trial_declarations",
    "RULES",
    "Rule",
    "register_rule",
    "select_rules",
    "Finding",
    "apply_baseline",
    "apply_suppressions",
    "load_baseline",
    "render_json",
    "render_text",
    "suppressed_codes",
    "write_baseline",
    "EXACT_MODULES",
    "ImportBinding",
    "ModuleContext",
    "ProjectContext",
    "load_project",
    "project_from_sources",
]
