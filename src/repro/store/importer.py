"""Ingesting ``BENCH_<exp>.json`` baselines into the trial store.

The committed ``kecss bench`` baselines predate the store; ``kecss store
import BENCH_e3.json BENCH_e9.json`` migrates them so ``history`` and
``regress`` see the full recorded trajectory.  Because a baseline payload
and a live ``kecss bench --store-dir`` run flow through this same function,
a store populated from a committed baseline is aggregate-for-aggregate
identical to one populated by re-running the benchmark: the run manifest
keeps the baseline's rendered table verbatim and the trial columns keep its
per-trial values bit-for-bit (see :mod:`repro.store.columns`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.analysis.bench import validate_baseline
from repro.store.store import RunInfo, StoreError, TrialStore

__all__ = ["import_baseline", "import_baseline_file"]


def import_baseline(
    store: TrialStore, payload: Mapping, source: str | None = None
) -> RunInfo:
    """Ingest one bench baseline payload as a new run segment.

    The payload is validated against the published bench schema first
    (:func:`repro.analysis.bench.validate_baseline`); the baseline's own
    ``created_unix`` stamp and provenance (code version, engine
    configuration, python/platform) are carried into the run manifest, plus
    the baseline's summary block for reference.
    """
    problems = validate_baseline(payload)
    if problems:
        raise StoreError(
            "refusing to import an invalid bench baseline: " + "; ".join(problems)
        )
    provenance = dict(payload.get("provenance") or {})
    provenance["bench_summary"] = payload.get("summary")
    return store.ingest(
        payload["experiment"],
        payload["trials"],
        created_unix=payload["created_unix"],
        table=payload.get("table"),
        provenance=provenance,
        source=source,
    )


def import_baseline_file(store: TrialStore, path: str | Path) -> RunInfo:
    """Read a ``BENCH_<exp>.json`` file and ingest it; returns the run info."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise StoreError(f"cannot read baseline {path}: {exc}") from exc
    return import_baseline(store, payload, source=str(path))
