"""``repro.store``: columnar trial store + cross-run regression tracking.

The engine's :class:`~repro.analysis.runner.TrialResult` batches (and the
``BENCH_*.json`` baselines built from them) persist here as append-only
*run segments* -- flat typed columns plus a schema-checked JSON manifest --
so multi-baseline queries and regression tracking across runs are cheap.

* :mod:`repro.store.columns` -- the dependency-free column codec
  (``i64`` / ``f64`` / dictionary-encoded strings / lossless JSON).
* :mod:`repro.store.store` -- :class:`TrialStore`: ingest, enumerate and
  query runs (filter by experiment / code version / per-trial equality,
  project columns).
* :mod:`repro.store.regression` -- ``kecss history`` per-version trend
  tables and the ``kecss regress`` latest-vs-previous-version drift check.
* :mod:`repro.store.importer` -- ``kecss store import`` for migrating
  committed ``BENCH_*.json`` baselines.
"""

from repro.store.columns import ColumnCodecError, ColumnSpec, infer_dtype
from repro.store.importer import import_baseline, import_baseline_file
from repro.store.regression import (
    compare_tables_with_tolerance,
    duration_stats,
    history_drilldown,
    history_table,
    metric_means,
    pick_baseline_run,
    regress,
    relative_drift,
)
from repro.store.store import (
    CORE_COLUMNS,
    RUN_SCHEMA_NAME,
    SCHEMA_VERSION,
    STORE_SCHEMA_NAME,
    FsckFinding,
    RunInfo,
    RunSlice,
    StoreError,
    StoreWarning,
    TrialStore,
    git_describe,
    validate_run_manifest,
)

__all__ = [
    "CORE_COLUMNS",
    "RUN_SCHEMA_NAME",
    "SCHEMA_VERSION",
    "STORE_SCHEMA_NAME",
    "ColumnCodecError",
    "ColumnSpec",
    "FsckFinding",
    "RunInfo",
    "RunSlice",
    "StoreError",
    "StoreWarning",
    "TrialStore",
    "compare_tables_with_tolerance",
    "duration_stats",
    "git_describe",
    "history_drilldown",
    "history_table",
    "import_baseline",
    "import_baseline_file",
    "infer_dtype",
    "metric_means",
    "pick_baseline_run",
    "regress",
    "relative_drift",
    "validate_run_manifest",
]
