"""Append-only columnar store of experiment trial batches.

``BENCH_<exp>.json`` baselines are isolated snapshots; this store is the
durable, queryable layer between the engine and any cross-run tooling.  A
store is a directory of *run segments*::

    <root>/
      store.json                    # store manifest (schema + version)
      segments/
        run-000001-e3/
          manifest.json             # run manifest: provenance, table, columns
          c0.i64  c1.f64  c2.dict   # flat columns, one value per trial
        run-000002-e3/
          ...

Each ingested batch becomes one immutable segment: core columns (``seed``,
``index``, ``duration``, ``cached``), one ``config.<key>`` column per
configuration key, one ``metrics.<key>`` column per metric, an ``error``
column only when a trial actually failed, and a ``worker`` provenance column
only when a cluster worker computed some trial.  Dtypes are inferred per column
(see :mod:`repro.store.columns`), so reading a run back yields exactly the
values ingested -- the property the bit-identical aggregate checks rely on.

The run manifest records full provenance: experiment id, the engine's
``code_version`` tag, backend/worker/cache configuration, python/platform,
``git describe`` output when a git checkout is reachable, and the caller's
wall-clock stamp.  Like ``bench.py`` baselines, manifests are schema-checked
(:func:`validate_run_manifest`) before anything touches disk.

Writes are crash-safe without locks: the segment directory is claimed with
an atomic ``mkdir``, column files are written first and ``manifest.json``
last, so a segment is visible to readers only once complete.  Directories
without a manifest are ignored (and left for inspection); a segment whose
manifest is corrupt or schema-invalid is skipped with a
:class:`StoreWarning` rather than failing the read.  ``TrialStore.fsck``
(``kecss store fsck [--repair]``) detects every crash residue -- half
written segments, truncated columns, stray manifest tmp files -- and
quarantines damage under ``<root>/quarantine/``; ``TrialStore.gc``
(``kecss store gc --keep-last N``) is per-experiment retention.  The
writer's commit sequence carries named fault-injection points
(:func:`repro.analysis.faults.store_crash_hook`), so the recovery path is
tested against a crash at every stage (see ``docs/robustness.md``).
"""

from __future__ import annotations

import json
import os
import shutil
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.code_version import git_describe
from repro.obs.trace import get_tracer
from repro.store.columns import ColumnCodecError, ColumnSpec, build_column, read_column

__all__ = [
    "STORE_SCHEMA_NAME",
    "RUN_SCHEMA_NAME",
    "SCHEMA_VERSION",
    "CORE_COLUMNS",
    "StoreError",
    "StoreWarning",
    "FsckFinding",
    "RunInfo",
    "RunSlice",
    "TrialStore",
    "git_describe",
    "validate_run_manifest",
]

STORE_SCHEMA_NAME = "kecss-trial-store"
RUN_SCHEMA_NAME = "kecss-trial-store-run"
SCHEMA_VERSION = 1

#: Columns every run carries, before the per-key config/metric columns.
CORE_COLUMNS = ("seed", "index", "duration", "cached")

#: Keys every ingested trial record must carry (the ``bench.py`` trial shape).
_REQUIRED_TRIAL_KEYS = frozenset({"config", "seed", "duration", "metrics"})


class StoreError(RuntimeError):
    """Raised for malformed stores, manifests or ingestion payloads."""


class StoreWarning(UserWarning):
    """Warned (not raised) for damage a read path can safely step around.

    A single corrupt segment must not take down ``kecss history`` for the
    whole store; reads skip it with this warning and ``kecss store fsck``
    reports (and optionally quarantines) it.
    """


#: Fault-injection observer for the writer's crash points; ``None`` in
#: production.  :func:`repro.analysis.faults.store_crash_hook` installs a
#: hook that raises at scripted points, simulating a writer dying mid-commit
#: at every stage the crash-recovery tests need to cover.
_crash_hook = None


def _crash_point(point: str) -> None:
    """Named writer crash point (no-op unless a fault hook is installed)."""
    if _crash_hook is not None:
        _crash_hook(point)


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write JSON via a sibling tmp file + rename, so readers never see a
    truncated document (mirrors the engine cache writer)."""
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _crash_point(f"tmp-written:{path.name}")
    tmp.replace(path)


@dataclass(frozen=True)
class FsckFinding:
    """One problem ``TrialStore.fsck`` detected (and possibly repaired).

    ``kind`` is one of ``"uncommitted"`` (a claimed segment without a
    manifest -- a crashed writer), ``"manifest-corrupt"`` (unparseable
    JSON), ``"manifest-schema"`` (schema violations), ``"column"`` (a
    truncated/corrupt/missing column file), or ``"stray-tmp"`` (a leftover
    ``manifest.json.*.tmp`` beside a healthy manifest).  ``repaired`` is
    true when ``fsck(repair=True)`` quarantined the segment (or unlinked
    the stray tmp file).
    """

    segment: str
    kind: str
    detail: str
    repaired: bool = False


@dataclass(frozen=True)
class RunInfo:
    """Summary of one stored run segment (manifest-backed, columns unread)."""

    run_id: str
    sequence: int
    experiment: str
    created_unix: float
    code_version: str
    trial_count: int
    path: Path
    manifest: dict

    @property
    def table(self) -> dict | None:
        """The rendered aggregate table stored with the run, if any."""
        return self.manifest.get("table")

    @property
    def provenance(self) -> dict:
        return self.manifest.get("provenance", {})

    def column_specs(self) -> list[ColumnSpec]:
        return [
            ColumnSpec.from_manifest(entry)
            for entry in self.manifest.get("columns", [])
        ]


@dataclass
class RunSlice:
    """One run's (possibly filtered and projected) columns."""

    info: RunInfo
    columns: dict[str, list]

    @property
    def trial_count(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))


def validate_run_manifest(payload: object) -> list[str]:
    """Return the list of schema violations of a run manifest (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"run manifest must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != RUN_SCHEMA_NAME:
        problems.append(f"schema must be {RUN_SCHEMA_NAME!r}")
    if not isinstance(payload.get("schema_version"), int):
        problems.append("schema_version must be an integer")
    for key in ("run_id", "experiment", "code_version"):
        if not isinstance(payload.get(key), str):
            problems.append(f"{key} must be a string")
    if not isinstance(payload.get("sequence"), int):
        problems.append("sequence must be an integer")
    if not isinstance(payload.get("created_unix"), (int, float)):
        problems.append("created_unix must be a number")
    if not isinstance(payload.get("provenance"), dict):
        problems.append("provenance must be an object")
    table = payload.get("table")
    if table is not None:
        if not isinstance(table, dict) or not isinstance(table.get("columns"), list):
            problems.append("table must be null or an object with columns")
    count = payload.get("trial_count")
    if not isinstance(count, int) or count < 0:
        problems.append("trial_count must be a non-negative integer")
    columns = payload.get("columns")
    if not isinstance(columns, list):
        problems.append("columns must be a list")
    else:
        seen: set[str] = set()
        for i, entry in enumerate(columns):
            try:
                spec = ColumnSpec.from_manifest(entry)
            except ColumnCodecError as exc:
                problems.append(f"columns[{i}]: {exc}")
                break
            if isinstance(count, int) and spec.count != count:
                problems.append(
                    f"columns[{i}] ({spec.name!r}) has count {spec.count}, "
                    f"run has trial_count {count}"
                )
            if spec.name in seen:
                problems.append(f"duplicate column name {spec.name!r}")
            seen.add(spec.name)
    return problems


def _trial_columns(trials: Sequence[Mapping]) -> dict[str, list]:
    """Explode bench-shaped trial records into name -> value-list columns.

    Config and metric keys are the union over the batch; trials missing a key
    contribute ``None`` (which forces the column to the lossless ``json``
    dtype).  The ``error`` column is emitted only when some trial failed, and
    the ``worker`` provenance column only when some trial was computed by a
    named cluster worker.
    """
    for i, trial in enumerate(trials):
        if not isinstance(trial, Mapping) or not _REQUIRED_TRIAL_KEYS <= set(trial):
            missing = (
                _REQUIRED_TRIAL_KEYS - set(trial)
                if isinstance(trial, Mapping)
                else _REQUIRED_TRIAL_KEYS
            )
            raise StoreError(f"trials[{i}] is missing fields: {sorted(missing)}")
        if not isinstance(trial["config"], Mapping) or not isinstance(
            trial["metrics"], Mapping
        ):
            raise StoreError(f"trials[{i}]: config and metrics must be objects")

    columns: dict[str, list] = {
        "seed": [t["seed"] for t in trials],
        "index": [t.get("index", i) for i, t in enumerate(trials)],
        "duration": [float(t["duration"]) for t in trials],
        "cached": [int(bool(t.get("cached"))) for t in trials],
    }
    config_keys = sorted({key for t in trials for key in t["config"]})
    for key in config_keys:
        columns[f"config.{key}"] = [t["config"].get(key) for t in trials]
    metric_keys = sorted({key for t in trials for key in t["metrics"]})
    for key in metric_keys:
        columns[f"metrics.{key}"] = [t["metrics"].get(key) for t in trials]
    if any(t.get("error") is not None for t in trials):
        columns["error"] = [t.get("error") for t in trials]
    if any(t.get("worker") is not None for t in trials):
        # Cluster-backend provenance: which worker computed each trial.
        # Sparse like ``error`` so runs from in-process backends (and
        # imported historical baselines) keep their exact column set.
        columns["worker"] = [t.get("worker") for t in trials]
    if any(t.get("queue_seconds") for t in trials):
        # Queue-wait provenance (submit -> compute start), split from
        # ``duration``.  Sparse so historical baselines recorded before the
        # field existed -- and serial runs where every wait is 0.0 -- keep
        # their exact column set.
        columns["queue_seconds"] = [
            float(t.get("queue_seconds") or 0.0) for t in trials
        ]
    return columns


class TrialStore:
    """A directory-backed columnar store of trial runs.

    Args:
        root: Store directory.  Created (with its ``store.json`` manifest)
            when *create* is true; otherwise the directory must already be a
            valid store.
    """

    def __init__(self, root: str | Path, create: bool = True) -> None:
        self.root = Path(root)
        manifest = self.root / "store.json"
        if manifest.is_file():
            try:
                payload = json.loads(manifest.read_text())
            except ValueError as exc:
                raise StoreError(f"corrupt store manifest {manifest}: {exc}")
            if payload.get("schema") != STORE_SCHEMA_NAME:
                raise StoreError(
                    f"{self.root} is not a trial store (schema "
                    f"{payload.get('schema')!r}, expected {STORE_SCHEMA_NAME!r})"
                )
            if payload.get("schema_version") != SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.root} has schema_version "
                    f"{payload.get('schema_version')!r}; this code reads "
                    f"{SCHEMA_VERSION}"
                )
        elif create:
            (self.root / "segments").mkdir(parents=True, exist_ok=True)
            _write_json_atomic(
                manifest,
                {"schema": STORE_SCHEMA_NAME, "schema_version": SCHEMA_VERSION},
            )
        else:
            raise StoreError(f"no trial store at {self.root} (missing store.json)")

    @property
    def segments_dir(self) -> Path:
        return self.root / "segments"

    # ---------------------------------------------------------------- reading
    def runs(self, experiment: str | None = None) -> list[RunInfo]:
        """All committed runs (optionally of one experiment), oldest first.

        Ordering is by the monotonically increasing ingestion sequence, which
        is what ``history`` / ``regress`` mean by "latest" and "previous" --
        not by the caller-supplied wall clock, which may be skewed.

        A segment with a corrupt or schema-invalid manifest is *skipped*
        with a :class:`StoreWarning` instead of failing the whole read: one
        damaged run must not take down ``kecss history``/``regress`` for
        every healthy run in the store.  ``kecss store fsck`` reports (and
        ``--repair`` quarantines) what was skipped.
        """
        runs: list[RunInfo] = []
        if not self.segments_dir.is_dir():
            return runs
        for path in sorted(self.segments_dir.iterdir()):
            manifest_path = path / "manifest.json"
            if not manifest_path.is_file():
                continue  # claimed but never committed (crashed writer)
            try:
                payload = json.loads(manifest_path.read_text())
            except (OSError, ValueError) as exc:
                warnings.warn(
                    StoreWarning(
                        f"skipping segment {path.name}: corrupt run manifest "
                        f"({exc}); run `kecss store fsck` to inspect"
                    ),
                    stacklevel=2,
                )
                continue
            problems = validate_run_manifest(payload)
            if problems:
                warnings.warn(
                    StoreWarning(
                        f"skipping segment {path.name}: invalid run manifest "
                        f"({'; '.join(problems)}); run `kecss store fsck` "
                        f"to inspect"
                    ),
                    stacklevel=2,
                )
                continue
            if experiment is not None and payload["experiment"] != experiment:
                continue
            runs.append(
                RunInfo(
                    run_id=payload["run_id"],
                    sequence=payload["sequence"],
                    experiment=payload["experiment"],
                    created_unix=float(payload["created_unix"]),
                    code_version=payload["code_version"],
                    trial_count=payload["trial_count"],
                    path=path,
                    manifest=payload,
                )
            )
        runs.sort(key=lambda info: info.sequence)
        return runs

    def run(self, run_id: str) -> RunInfo:
        """Look up one run by id."""
        for info in self.runs():
            if info.run_id == run_id:
                return info
        raise StoreError(f"no run {run_id!r} in store {self.root}")

    def columns(
        self, run: RunInfo | str, names: Iterable[str] | None = None
    ) -> dict[str, list]:
        """Read (a projection of) one run's columns back as name -> values."""
        info = self.run(run) if isinstance(run, str) else run
        specs = {spec.name: spec for spec in info.column_specs()}
        if names is None:
            wanted = list(specs)
        else:
            wanted = list(names)
            unknown = [name for name in wanted if name not in specs]
            if unknown:
                raise StoreError(
                    f"run {info.run_id!r} has no column(s) {unknown!r}; "
                    f"available: {sorted(specs)}"
                )
        try:
            return {name: read_column(info.path, specs[name]) for name in wanted}
        except ColumnCodecError as exc:
            raise StoreError(f"run {info.run_id!r}: {exc}") from exc

    def query(
        self,
        experiment: str | None = None,
        *,
        code_version: str | None = None,
        where: Mapping[str, object] | None = None,
        columns: Iterable[str] | None = None,
    ) -> list[RunSlice]:
        """Filter runs and project columns; one :class:`RunSlice` per run.

        *experiment* and *code_version* filter whole runs via the manifest;
        *where* filters **rows** by equality on column values (e.g.
        ``{"config.family": "powerlaw"}``).  A run lacking a ``where`` column
        contributes no rows and is omitted.  *columns* projects the result
        (default: every stored column); a projected column absent from a run
        -- the sparse ``error`` column, or a metric introduced by a newer
        code version -- is ``None``-filled for that run rather than aborting
        the query.
        """
        where = dict(where or {})
        slices: list[RunSlice] = []
        for info in self.runs(experiment):
            if code_version is not None and info.code_version != code_version:
                continue
            available = {spec.name for spec in info.column_specs()}
            if not set(where) <= available:
                continue
            wanted = list(columns) if columns is not None else sorted(available)
            data = self.columns(info, (set(wanted) | set(where)) & available)
            for name in wanted:
                if name not in available:
                    data[name] = [None] * info.trial_count
            if where:
                mask = [
                    all(data[name][row] == value for name, value in where.items())
                    for row in range(info.trial_count)
                ]
                if not any(mask):
                    continue
                data = {
                    name: [v for v, keep in zip(values, mask) if keep]
                    for name, values in data.items()
                }
            slices.append(
                RunSlice(info, {name: data[name] for name in wanted})
            )
        return slices

    # ---------------------------------------------------------------- writing
    def _claim_segment(self, experiment: str) -> tuple[int, Path]:
        """Atomically claim the next run directory (mkdir is the lock)."""
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        existing = [
            int(path.name.split("-")[1])
            for path in self.segments_dir.iterdir()
            if path.name.startswith("run-") and path.name.split("-")[1].isdigit()
        ]
        sequence = max(existing, default=0) + 1
        for _ in range(1000):
            path = self.segments_dir / f"run-{sequence:06d}-{experiment}"
            try:
                path.mkdir()
            except FileExistsError:
                sequence += 1
                continue
            return sequence, path
        raise StoreError(
            f"could not claim a run segment under {self.segments_dir} "
            f"(1000 consecutive collisions)"
        )

    def ingest(
        self,
        experiment: str,
        trials: Sequence[Mapping],
        *,
        created_unix: float,
        table: Mapping | None = None,
        provenance: Mapping[str, object] | None = None,
        source: str | None = None,
    ) -> RunInfo:
        """Append one run segment and return its :class:`RunInfo`.

        *trials* are bench-shaped records (``config`` / ``seed`` / ``index``
        / ``duration`` / ``cached`` / ``error`` / ``metrics``); *table* is
        the rendered aggregate table payload, if the caller has one;
        *created_unix* is the caller's wall-clock stamp (the store never
        reads the clock itself); *provenance* should carry the engine
        configuration and the experiment's ``code_version`` tag.
        """
        if not isinstance(experiment, str) or not experiment:
            raise StoreError("experiment must be a non-empty string")
        # Provenance is recorded verbatim: the *producer* of the data stamps
        # git describe (see repro.analysis.bench.engine_provenance).  Stamping
        # here would misattribute imported historical baselines to whatever
        # commit happens to be checked out at ingestion time.
        provenance = dict(provenance or {})
        if source is not None:
            provenance.setdefault("source", source)
        with get_tracer().span(
            "store.ingest", cat="store",
            experiment=experiment, trials=len(trials),
        ):
            column_values = _trial_columns(list(trials))
            specs: list[ColumnSpec] = []
            payloads: list[bytes] = []
            for index, (name, values) in enumerate(column_values.items()):
                try:
                    spec, data = build_column(name, values, index)
                except ColumnCodecError as exc:
                    raise StoreError(
                        f"cannot encode column {name!r}: {exc}"
                    ) from exc
                specs.append(spec)
                payloads.append(data)
            sequence, path = self._claim_segment(experiment)
            _crash_point("segment-claimed")
            run_id = path.name
            manifest = {
                "schema": RUN_SCHEMA_NAME,
                "schema_version": SCHEMA_VERSION,
                "run_id": run_id,
                "sequence": sequence,
                "experiment": experiment,
                "created_unix": float(created_unix),
                "code_version": str(provenance.get("code_version", "unknown")),
                "provenance": provenance,
                "table": dict(table) if table is not None else None,
                "trial_count": len(trials),
                "columns": [spec.to_manifest() for spec in specs],
            }
            problems = validate_run_manifest(manifest)
            if problems:
                raise StoreError(
                    "refusing to write an invalid run manifest: "
                    + "; ".join(problems)
                )
            for spec, data in zip(specs, payloads):
                (path / spec.file).write_bytes(data)
                _crash_point(f"column-written:{spec.file}")
            # The manifest is written last and renamed into place: its
            # presence commits the segment, and a crash mid-write leaves only
            # a .tmp file (the segment stays invisible) instead of a corrupt
            # manifest that would brick every read of the store.
            _crash_point("before-manifest")
            _write_json_atomic(path / "manifest.json", manifest)
        return RunInfo(
            run_id=run_id,
            sequence=sequence,
            experiment=experiment,
            created_unix=float(created_unix),
            code_version=manifest["code_version"],
            trial_count=len(trials),
            path=path,
            manifest=manifest,
        )

    # ------------------------------------------------------------ maintenance
    def fsck(self, repair: bool = False) -> list[FsckFinding]:
        """Check every segment; optionally quarantine the damaged ones.

        Detects, per segment: a missing manifest (``uncommitted`` -- a
        crashed writer's half-written segment), an unparseable manifest
        (``manifest-corrupt``), schema violations (``manifest-schema``), a
        truncated/corrupt/missing column file (``column``), and -- in
        otherwise healthy segments -- leftover ``manifest.json.*.tmp``
        files from a writer that died between write and rename
        (``stray-tmp``).

        With *repair*, damaged segments are moved under
        ``<root>/quarantine/`` (never deleted -- the bytes stay available
        for inspection) and stray tmp files are unlinked.  Do not repair
        while a writer is active: an in-flight ingest looks exactly like a
        crashed one until its manifest lands.
        """
        findings: list[FsckFinding] = []
        if not self.segments_dir.is_dir():
            return findings
        for path in sorted(self.segments_dir.iterdir()):
            if not path.is_dir():
                continue
            manifest_path = path / "manifest.json"
            problem: tuple[str, str] | None = None
            if not manifest_path.is_file():
                problem = (
                    "uncommitted",
                    "claimed segment without a manifest (crashed writer)",
                )
            else:
                try:
                    payload = json.loads(manifest_path.read_text())
                except (OSError, ValueError) as exc:
                    problem = ("manifest-corrupt", str(exc))
                else:
                    violations = validate_run_manifest(payload)
                    if violations:
                        problem = ("manifest-schema", "; ".join(violations))
                    else:
                        for entry in payload.get("columns", []):
                            spec = ColumnSpec.from_manifest(entry)
                            try:
                                read_column(path, spec)
                            except (ColumnCodecError, OSError) as exc:
                                problem = ("column", f"{spec.name!r}: {exc}")
                                break
            if problem is None:
                for stray in sorted(path.glob("manifest.json.*.tmp")):
                    repaired = False
                    if repair:
                        stray.unlink(missing_ok=True)
                        repaired = True
                    findings.append(
                        FsckFinding(path.name, "stray-tmp", stray.name, repaired)
                    )
                continue
            kind, detail = problem
            repaired = False
            if repair:
                self._quarantine(path)
                repaired = True
            findings.append(FsckFinding(path.name, kind, detail, repaired))
        return findings

    def _quarantine(self, path: Path) -> Path:
        """Move a damaged segment under ``<root>/quarantine/`` (keep bytes)."""
        target_dir = self.root / "quarantine"
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        suffix = 1
        while target.exists():
            suffix += 1
            target = target_dir / f"{path.name}.{suffix}"
        path.rename(target)
        return target

    def gc(self, keep_last: int) -> list[RunInfo]:
        """Retention: keep the newest *keep_last* runs **per experiment**.

        Older segments are deleted outright (unlike quarantine, this is the
        intentional retention path) and their :class:`RunInfo` records are
        returned.  "Newest" follows the ingestion sequence, the same order
        ``history``/``regress`` use.  Damaged segments are not touched --
        they are invisible to :meth:`runs` -- so run :meth:`fsck` first to
        account for those.
        """
        if keep_last < 1:
            raise StoreError(f"gc keep_last must be >= 1, got {keep_last}")
        removed: list[RunInfo] = []
        by_experiment: dict[str, list[RunInfo]] = {}
        for info in self.runs():  # already oldest-first by sequence
            by_experiment.setdefault(info.experiment, []).append(info)
        for experiment in sorted(by_experiment):
            for info in by_experiment[experiment][:-keep_last]:
                shutil.rmtree(info.path)
                removed.append(info)
        return removed
