"""Typed flat columns for the trial store.

A stored run is a set of *columns* -- one value per trial -- written as flat
binary files next to a small JSON manifest (see :mod:`repro.store.store`).
The codec here is deliberately dependency-free: numeric columns are packed
little-endian with the stdlib :mod:`array` module (the same memory layout
numpy would produce, so future readers can ``numpy.frombuffer`` them), and
everything that is not uniformly numeric degrades to an explicit JSON column
rather than being silently coerced.

Four dtypes cover every value the engine emits:

* ``i64`` -- all values are Python ints (not bools) fitting in a signed
  64-bit word; packed as little-endian ``int64``.
* ``f64`` -- all values are floats; packed as little-endian IEEE-754
  doubles, so a decoded column is bit-identical to the ingested one.
* ``dict`` -- all values are strings; dictionary-encoded as ``i64`` codes
  into a ``values`` table kept in the manifest (cheap equality filters for
  family / experiment labels).
* ``json`` -- anything else (missing values, mixed types, bools, huge
  ints): the column file is the JSON list itself.  Lossless by
  construction, just not flat.

The dtype is *inferred* per column at ingest time (:func:`infer_dtype`), so
callers never lose data to a wrong declaration; what was ingested is what
:func:`read_column` returns, value-for-value.
"""

from __future__ import annotations

import json
import sys
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = [
    "DTYPES",
    "ColumnCodecError",
    "ColumnSpec",
    "infer_dtype",
    "build_column",
    "encode_column",
    "decode_column",
    "write_column",
    "read_column",
]

#: Supported column dtypes, in inference-preference order.
DTYPES = ("i64", "f64", "dict", "json")

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


class ColumnCodecError(ValueError):
    """Raised when a column cannot be encoded or fails to decode cleanly."""


@dataclass(frozen=True)
class ColumnSpec:
    """Manifest entry describing one stored column.

    Attributes:
        name: Logical column name (``"seed"``, ``"config.n"``,
            ``"metrics.iterations"``, ...).
        dtype: One of :data:`DTYPES`.
        file: File name of the column data inside the run segment.
        count: Number of values (one per trial).
        values: Dictionary table for ``dict`` columns (code -> string);
            empty for every other dtype.
    """

    name: str
    dtype: str
    file: str
    count: int
    values: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise ColumnCodecError(
                f"column {self.name!r} has unknown dtype {self.dtype!r}; "
                f"known: {DTYPES}"
            )

    def to_manifest(self) -> dict:
        payload = {
            "name": self.name,
            "dtype": self.dtype,
            "file": self.file,
            "count": self.count,
        }
        if self.dtype == "dict":
            payload["values"] = list(self.values)
        return payload

    @classmethod
    def from_manifest(cls, payload: object) -> "ColumnSpec":
        if not isinstance(payload, dict):
            raise ColumnCodecError(
                f"column manifest entry must be an object, got "
                f"{type(payload).__name__}"
            )
        missing = {"name", "dtype", "file", "count"} - set(payload)
        if missing:
            raise ColumnCodecError(
                f"column manifest entry is missing fields: {sorted(missing)}"
            )
        values = payload.get("values", [])
        if not isinstance(values, list) or not all(
            isinstance(v, str) for v in values
        ):
            raise ColumnCodecError(
                f"column {payload['name']!r}: 'values' must be a list of strings"
            )
        return cls(
            name=payload["name"],
            dtype=payload["dtype"],
            file=payload["file"],
            count=int(payload["count"]),
            values=tuple(values),
        )


def _is_i64(value: object) -> bool:
    return (
        isinstance(value, int)
        and not isinstance(value, bool)
        and _I64_MIN <= value <= _I64_MAX
    )


def infer_dtype(values: Sequence[object]) -> str:
    """The narrowest dtype that stores *values* losslessly.

    Bools, ``None`` (missing values), ints outside the signed 64-bit range
    and any type mixture all fall back to ``json`` -- a decoded column is
    always equal, type and all, to the ingested one.
    """
    if values and all(_is_i64(v) for v in values):
        return "i64"
    if values and all(isinstance(v, float) for v in values):
        return "f64"
    if values and all(isinstance(v, str) for v in values):
        return "dict"
    return "json"


def _pack(typecode: str, values: Sequence) -> bytes:
    arr = array(typecode, values)
    if arr.itemsize != 8:  # pragma: no cover - q/d are 8 bytes on CPython
        raise ColumnCodecError(
            f"array typecode {typecode!r} is {arr.itemsize} bytes on this "
            f"platform; the store format requires 8"
        )
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        arr.byteswap()
    return arr.tobytes()


def _unpack(typecode: str, data: bytes) -> list:
    arr = array(typecode)
    try:
        arr.frombytes(data)
    except ValueError as exc:
        raise ColumnCodecError(f"column data is not a whole number of words: {exc}")
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        arr.byteswap()
    return arr.tolist()


def build_column(name: str, values: Sequence[object], index: int) -> tuple[ColumnSpec, bytes]:
    """Infer the dtype of *values* and encode them; returns (spec, payload).

    The column file is named ``c<index>.<dtype>`` -- names are manifest-only,
    so metric keys with filesystem-hostile characters cannot corrupt paths.
    """
    dtype = infer_dtype(values)
    dictionary: tuple[str, ...] = ()
    if dtype == "dict":
        seen: dict[str, int] = {}
        for value in values:
            seen.setdefault(value, len(seen))
        dictionary = tuple(seen)
    spec = ColumnSpec(
        name=name,
        dtype=dtype,
        file=f"c{index}.{dtype}",
        count=len(values),
        values=dictionary,
    )
    return spec, encode_column(spec, values)


def encode_column(spec: ColumnSpec, values: Sequence[object]) -> bytes:
    """Encode *values* as the on-disk bytes of a column described by *spec*."""
    if len(values) != spec.count:
        raise ColumnCodecError(
            f"column {spec.name!r}: {len(values)} values for count {spec.count}"
        )
    if spec.dtype == "i64":
        return _pack("q", values)
    if spec.dtype == "f64":
        return _pack("d", values)
    if spec.dtype == "dict":
        codes = {value: code for code, value in enumerate(spec.values)}
        try:
            return _pack("q", [codes[v] for v in values])
        except KeyError as exc:
            raise ColumnCodecError(
                f"column {spec.name!r}: value {exc.args[0]!r} is not in the "
                f"dictionary table"
            ) from None
    try:
        return json.dumps(list(values)).encode()
    except (TypeError, ValueError) as exc:
        raise ColumnCodecError(
            f"column {spec.name!r} holds values that are not JSON-serializable: "
            f"{exc}"
        ) from exc


def decode_column(spec: ColumnSpec, data: bytes) -> list:
    """Decode on-disk column bytes back to the ingested value list."""
    if spec.dtype in ("i64", "f64"):
        values = _unpack("q" if spec.dtype == "i64" else "d", data)
    elif spec.dtype == "dict":
        codes = _unpack("q", data)
        try:
            values = [spec.values[code] for code in codes]
        except IndexError:
            raise ColumnCodecError(
                f"column {spec.name!r}: code outside the dictionary table "
                f"(size {len(spec.values)})"
            ) from None
    else:
        try:
            values = json.loads(data.decode())
        except (UnicodeDecodeError, ValueError) as exc:
            raise ColumnCodecError(
                f"column {spec.name!r}: corrupt JSON column: {exc}"
            ) from exc
        if not isinstance(values, list):
            raise ColumnCodecError(
                f"column {spec.name!r}: JSON column must decode to a list"
            )
    if len(values) != spec.count:
        raise ColumnCodecError(
            f"column {spec.name!r}: decoded {len(values)} values, manifest "
            f"says {spec.count}"
        )
    return values


def write_column(directory: Path, spec: ColumnSpec, values: Sequence[object]) -> Path:
    """Write one column file into a run segment directory."""
    path = Path(directory) / spec.file
    path.write_bytes(encode_column(spec, values))
    return path


def read_column(directory: Path, spec: ColumnSpec) -> list:
    """Read one column file of a run segment back to its value list."""
    path = Path(directory) / spec.file
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise ColumnCodecError(
            f"column {spec.name!r}: cannot read {path}: {exc}"
        ) from exc
    return decode_column(spec, data)
