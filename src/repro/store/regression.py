"""Cross-run aggregate trends and regression checks over a trial store.

Two consumers sit on top of :class:`~repro.store.store.TrialStore`:

* ``kecss history <exp>`` -- :func:`history_table` groups every stored run
  of an experiment by its ``code_version`` tag (in first-ingested order) and
  tabulates per-version aggregates: run/trial counts, pooled duration
  statistics and the mean of every numeric metric column.  This is the
  perf/correctness trajectory across commits that isolated
  ``BENCH_*.json`` snapshots cannot show.  ``kecss history <exp> --metric X
  [--by KEY]`` switches to :func:`history_drilldown`, which follows one
  metric and -- instead of pooling whole runs -- groups the pooled trials
  by a per-trial column: a configuration key (``--by family``), or a bare
  column such as the cluster backend's ``worker`` provenance.

* ``kecss regress <exp>`` -- :func:`regress` compares the **latest** stored
  run against the most recent run of a *different* code version (falling
  back to the immediately preceding run when every stored run shares the
  latest version).  It checks three layers, strictest first:

  1. the rendered aggregate table (the same cells ``kecss bench --against``
     diffs): numeric cells must agree within ``tolerance`` (relative;
     default 0, i.e. bit-identical), other cells exactly;
  2. per-metric means over the trial columns, within ``tolerance``;
  3. the per-trial duration distribution (mean / p50 / max), reported
     always and *enforced* only when ``duration_tolerance`` is given --
     wall-clock is machine-dependent, so failing on it must be opt-in.

Drift is relative: ``|new - old| / max(|old|, 1e-12) > tolerance``; a NaN on
either side of any compared aggregate always counts as drift (a plain
``> tolerance`` comparison would silently pass it).
"""

from __future__ import annotations

from math import isnan
from statistics import fmean, median
from typing import Mapping, Sequence

from repro.analysis.tables import Table
from repro.store.store import RunInfo, StoreError, TrialStore

__all__ = [
    "duration_stats",
    "metric_means",
    "history_table",
    "history_drilldown",
    "pick_baseline_run",
    "compare_tables_with_tolerance",
    "regress",
]

def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def relative_drift(old: object, new: object) -> float:
    """``|new - old| / max(|old|, 1e-12)``.

    Deliberately strict around a zero baseline: any nonzero change from an
    exactly-zero aggregate reads as enormous drift, because a metric that
    was identically 0 across a whole run moving at all is a behaviour
    change, not noise.
    """
    return abs(float(new) - float(old)) / max(abs(float(old)), 1e-12)


def _drifted(old: object, new: object, tolerance: float) -> bool:
    """Whether a numeric pair counts as drift at *tolerance*.

    NaN on either side is always drift: ``NaN > tolerance`` is False, so a
    plain comparison would wave a broken (NaN) aggregate through the gate
    exactly when the result is most wrong.
    """
    if isnan(float(old)) or isnan(float(new)):
        return True
    return relative_drift(old, new) > tolerance


def duration_stats(durations: Sequence[float]) -> dict[str, float]:
    """Distribution summary of per-trial wall-clock durations."""
    if not durations:
        return {"trials": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "max": 0.0}
    return {
        "trials": len(durations),
        "total": sum(durations),
        "mean": fmean(durations),
        "p50": median(durations),
        "max": max(durations),
    }


def metric_means(columns: Mapping[str, list]) -> dict[str, float]:
    """Mean of every numeric ``metrics.*`` column, skipping missing values.

    A metric recorded by only some trials of a run (e.g. the exact-diffed
    subset of a differential sweep) is averaged over the trials that carry
    it; a metric with no numeric values at all is omitted.
    """
    means: dict[str, float] = {}
    for name, values in columns.items():
        if not name.startswith("metrics."):
            continue
        numeric = [v for v in values if _is_number(v)]
        if numeric:
            means[name[len("metrics."):]] = fmean(numeric)
    return means


def _pooled(store: TrialStore, runs: Sequence[RunInfo]) -> dict[str, list]:
    """Concatenate the shared columns of several runs (union of names)."""
    pooled: dict[str, list] = {}
    for info in runs:
        for name, values in store.columns(info).items():
            pooled.setdefault(name, []).extend(values)
    return pooled


def history_table(store: TrialStore, experiment: str) -> Table:
    """Per-code-version aggregate trends of *experiment* across stored runs."""
    runs = store.runs(experiment)
    if not runs:
        raise StoreError(
            f"no stored runs for experiment {experiment!r} in {store.root}"
        )
    by_version: dict[str, list[RunInfo]] = {}
    for info in runs:  # first-ingested order, preserved by dict insertion
        by_version.setdefault(info.code_version, []).append(info)
    pooled = {
        version: _pooled(store, infos) for version, infos in by_version.items()
    }
    metric_names = sorted(
        {name for columns in pooled.values() for name in metric_means(columns)}
    )
    table = Table(
        title=f"history: {experiment} ({len(runs)} runs, "
              f"{len(by_version)} code versions)",
        columns=["code version", "runs", "trials", "mean s", "max s",
                 *[f"mean {name}" for name in metric_names]],
    )
    for version, infos in by_version.items():
        columns = pooled[version]
        stats = duration_stats(columns.get("duration", []))
        means = metric_means(columns)
        table.add_row(
            version,
            len(infos),
            stats["trials"],
            stats["mean"],
            stats["max"],
            *[means.get(name, "") for name in metric_names],
        )
    table.add_note(
        "one row per code version, oldest first; duration stats and metric "
        "means pool every stored run of that version"
    )
    return table


def history_drilldown(
    store: TrialStore, experiment: str, metric: str, by: str | None = None
) -> Table:
    """Follow one metric across code versions, grouped by a per-trial column.

    Where :func:`history_table` pools whole runs, this splits each code
    version's pooled trials by *by* -- resolved as a stored column name
    first (``"worker"``, ``"seed"``), then as ``config.<by>`` (so ``--by
    family`` works without the prefix) -- and reports per-group count /
    mean / min / max of *metric*.  ``by=None`` degenerates to a per-version
    trend of the single metric.

    Trials that do not record the metric (or record a non-numeric value)
    are excluded from the aggregates but the group row still shows how many
    trials *did* carry it, so sparse metrics cannot masquerade as dense.
    """
    runs = store.runs(experiment)
    if not runs:
        raise StoreError(
            f"no stored runs for experiment {experiment!r} in {store.root}"
        )
    by_version: dict[str, list[RunInfo]] = {}
    for info in runs:  # first-ingested order, preserved by dict insertion
        by_version.setdefault(info.code_version, []).append(info)
    run_columns = {info.run_id: store.columns(info) for info in runs}
    all_names = {name for columns in run_columns.values() for name in columns}

    # Resolve the metric against what is actually stored: a recorded
    # metric first (with or without the ``metrics.`` prefix), then a bare
    # numeric timing column -- so ``--metric duration`` and ``--metric
    # queue_seconds`` drill into where runs spent their time.
    if metric.startswith("metrics.") or f"metrics.{metric}" in all_names:
        metric_column = (
            metric if metric.startswith("metrics.") else f"metrics.{metric}"
        )
    else:
        metric_column = metric
    if metric_column not in all_names:
        known = sorted(
            name[len("metrics."):]
            for name in all_names
            if name.startswith("metrics.")
        )
        timing = sorted(
            name for name in ("duration", "queue_seconds") if name in all_names
        )
        raise StoreError(
            f"metric {metric!r} is not recorded by any stored run of "
            f"{experiment!r}; known metrics: {known}; timing columns: {timing}"
        )
    group_column: str | None = None
    if by is not None:
        for candidate in (by, f"config.{by}"):
            if candidate in all_names:
                group_column = candidate
                break
        if group_column is None:
            groupable = sorted(
                name for name in all_names if not name.startswith("metrics.")
            )
            raise StoreError(
                f"cannot group by {by!r}: no stored column {by!r} or "
                f"'config.{by}'; groupable columns: {groupable}"
            )

    header = ["code version"]
    if by is not None:
        header.append(by)
    header += ["trials", f"mean {metric}", f"min {metric}", f"max {metric}"]
    grouped_title = f" by {by}" if by is not None else ""
    table = Table(
        title=f"history: {experiment} metric {metric}{grouped_title} "
              f"({len(runs)} runs, {len(by_version)} code versions)",
        columns=header,
    )
    for version, infos in by_version.items():
        keys: list = []
        values: list = []
        for info in infos:
            columns = run_columns[info.run_id]
            # Core columns are dense, so "seed" measures the run's row count;
            # sparse columns (the metric in an older run, "worker" in a
            # serial run) are None-padded to keep rows aligned.
            rows = len(columns.get("seed", []))
            metric_values = columns.get(metric_column)
            values.extend(
                metric_values
                if isinstance(metric_values, list) and len(metric_values) == rows
                else [None] * rows
            )
            if group_column is None:
                keys.extend([None] * rows)
            else:
                group_keys = columns.get(group_column)
                keys.extend(
                    group_keys
                    if isinstance(group_keys, list) and len(group_keys) == rows
                    else [None] * rows
                )
        groups: dict = {}
        for key, value in zip(keys, values):
            groups.setdefault(key, []).append(value)
        for key in sorted(groups, key=repr):
            numeric = [v for v in groups[key] if _is_number(v)]
            row: list = [version]
            if by is not None:
                row.append("-" if key is None else key)
            if numeric:
                row += [len(numeric), fmean(numeric), min(numeric), max(numeric)]
            else:
                row += [0, "", "", ""]
            table.add_row(*row)
    table.add_note(
        "one row per (code version, group), versions oldest first; trials "
        "counts only the trials that recorded the metric numerically"
    )
    return table


def pick_baseline_run(runs: Sequence[RunInfo]) -> RunInfo | None:
    """The run the latest one regresses against, or ``None``.

    The most recent run whose ``code_version`` differs from the latest
    run's (cross-version regression tracking); when every earlier run
    shares the latest version, the immediately preceding run (which catches
    nondeterminism or environment drift at a fixed version).
    """
    if len(runs) < 2:
        return None
    latest = runs[-1]
    for info in reversed(runs[:-1]):
        if info.code_version != latest.code_version:
            return info
    return runs[-2]


def compare_tables_with_tolerance(
    old: Mapping, new: Mapping, tolerance: float
) -> list[str]:
    """Diff two stored table payloads cell-by-cell.

    Numeric cells may drift up to *tolerance* (relative); everything else
    must match exactly.  With ``tolerance=0`` this is the bit-identical
    check of ``kecss bench --against``, applied to stored runs.
    """
    problems: list[str] = []
    if list(old.get("columns", [])) != list(new.get("columns", [])):
        return [
            f"table columns differ: {old.get('columns')!r} vs "
            f"{new.get('columns')!r}"
        ]
    old_rows = [list(row) for row in old.get("rows", [])]
    new_rows = [list(row) for row in new.get("rows", [])]
    if len(old_rows) != len(new_rows):
        return [f"table row count differs: {len(old_rows)} vs {len(new_rows)}"]
    headers = list(old.get("columns", []))
    for r, (old_row, new_row) in enumerate(zip(old_rows, new_rows)):
        for c, (old_cell, new_cell) in enumerate(zip(old_row, new_row)):
            if _is_number(old_cell) and _is_number(new_cell):
                if _drifted(old_cell, new_cell, tolerance):
                    drift = relative_drift(old_cell, new_cell)
                    problems.append(
                        f"table[{r}][{headers[c]!r}] drifted "
                        f"{drift * 100:.2f}%: {old_cell!r} -> {new_cell!r} "
                        f"(tolerance {tolerance * 100:.2f}%)"
                    )
            elif old_cell != new_cell:
                problems.append(
                    f"table[{r}][{headers[c]!r}] differs: "
                    f"{old_cell!r} -> {new_cell!r}"
                )
    return problems


def regress(
    store: TrialStore,
    experiment: str,
    *,
    tolerance: float = 0.0,
    duration_tolerance: float | None = None,
) -> tuple[int, list[str]]:
    """Compare the latest stored run of *experiment* against its baseline run.

    Returns ``(exit_code, report_lines)``: 0 when nothing drifted (or there
    is nothing to compare), 1 on drift, 2 when the store holds no run of the
    experiment at all.
    """
    runs = store.runs(experiment)
    lines: list[str] = []
    if not runs:
        return 2, [f"no stored runs for experiment {experiment!r} in {store.root}"]
    latest = runs[-1]
    baseline = pick_baseline_run(runs)
    if baseline is None:
        return 0, [
            f"{experiment}: only one stored run ({latest.run_id}, version "
            f"{latest.code_version}); nothing to regress against"
        ]
    lines.append(
        f"{experiment}: comparing {latest.run_id} (version "
        f"{latest.code_version}) against {baseline.run_id} (version "
        f"{baseline.code_version})"
    )
    problems: list[str] = []

    old_table, new_table = baseline.table, latest.table
    if old_table is None or new_table is None:
        lines.append("table check skipped: a run has no stored aggregate table")
    else:
        table_problems = compare_tables_with_tolerance(
            old_table, new_table, tolerance
        )
        problems.extend(table_problems)
        lines.append(
            f"aggregate table: {len(table_problems)} drifting cell(s) "
            f"(tolerance {tolerance * 100:.2f}%)"
        )

    old_columns = store.columns(baseline)
    new_columns = store.columns(latest)
    old_means = metric_means(old_columns)
    new_means = metric_means(new_columns)
    for name in sorted(set(old_means) | set(new_means)):
        if name not in old_means or name not in new_means:
            side = "baseline" if name in old_means else "latest"
            problems.append(f"metric {name!r} is recorded only by the {side} run")
            continue
        drift = relative_drift(old_means[name], new_means[name])
        drifted = _drifted(old_means[name], new_means[name], tolerance)
        marker = "DRIFT" if drifted else "ok"
        lines.append(
            f"metric mean {name}: {old_means[name]:.6g} -> "
            f"{new_means[name]:.6g} ({drift * 100:.2f}% {marker})"
        )
        if drifted:
            problems.append(
                f"metric mean {name!r} drifted {drift * 100:.2f}%: "
                f"{old_means[name]!r} -> {new_means[name]!r} "
                f"(tolerance {tolerance * 100:.2f}%)"
            )

    old_durations = duration_stats(old_columns.get("duration", []))
    new_durations = duration_stats(new_columns.get("duration", []))
    for key in ("mean", "p50", "max"):
        lines.append(
            f"duration {key}: {old_durations[key]:.6f}s -> "
            f"{new_durations[key]:.6f}s"
        )
    if duration_tolerance is not None:
        drift = relative_drift(old_durations["mean"], new_durations["mean"])
        if _drifted(old_durations["mean"], new_durations["mean"], duration_tolerance):
            problems.append(
                f"mean trial duration drifted {drift * 100:.2f}%: "
                f"{old_durations['mean']:.6f}s -> {new_durations['mean']:.6f}s "
                f"(tolerance {duration_tolerance * 100:.2f}%)"
            )

    if problems:
        lines.append(f"REGRESSION: {len(problems)} problem(s)")
        lines.extend(f"  {problem}" for problem in problems)
        return 1, lines
    lines.append("no drift beyond tolerance")
    return 0, lines
