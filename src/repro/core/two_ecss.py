"""Weighted 2-ECSS (Theorem 1.1) and weighted TAP (Theorem 3.12).

The 2-ECSS algorithm builds the MST with the Kutten-Peleg algorithm, builds
the segment decomposition of Section 3.2 on its fragments, and then runs the
distributed weighted-TAP algorithm of Section 3 to cover every tree edge.
The approximation ratio is ``1 + O(log n)`` (the MST weighs at most the
optimum, the TAP stage is an O(log n)-approximation of the optimal
augmentation) and the round complexity is O((D + sqrt n) log^2 n) w.h.p.
"""

from __future__ import annotations

import random
from typing import Hashable

import networkx as nx

from repro.congest.cost_model import CostModel
from repro.congest.metrics import RoundLedger
from repro.core.result import ECSSResult
from repro.decomposition.segments import TreeDecomposition, build_decomposition
from repro.graphs.connectivity import is_k_edge_connected
from repro.graphs.fastgraph import hop_diameter
from repro.mst.distributed import build_mst_with_fragments
from repro.tap.cover import CoverageState
from repro.tap.distributed import TapResult, distributed_tap
from repro.trees.rooted import RootedTree

Edge = tuple[Hashable, Hashable]

__all__ = ["weighted_tap", "two_ecss"]


def weighted_tap(
    graph: nx.Graph,
    tree: RootedTree,
    decomposition: TreeDecomposition | None = None,
    seed: int | random.Random | None = None,
    symmetry_breaking: bool = True,
    cost_model: CostModel | None = None,
) -> TapResult:
    """Distributed weighted tree augmentation (Theorem 3.12).

    A thin wrapper over :func:`repro.tap.distributed.distributed_tap` that
    derives the segment-diameter round charge from *decomposition* when given
    (the decomposition the 2-ECSS pipeline builds anyway) and pre-builds the
    coverage kernel on the decomposition's LCA index, so the tree is indexed
    once per instance instead of once per stage.
    """
    if cost_model is None:
        cost_model = CostModel(n=graph.number_of_nodes(), diameter=hop_diameter(graph))
    segment_diameter = None
    coverage = None
    if decomposition is not None:
        segment_diameter = max(1, decomposition.max_segment_diameter())
        lca = decomposition.lca if decomposition.lca.tree is tree else None
        coverage = CoverageState(graph, tree, lca=lca)
    return distributed_tap(
        graph,
        tree,
        seed=seed,
        segment_diameter=segment_diameter,
        cost_model=cost_model,
        symmetry_breaking=symmetry_breaking,
        coverage=coverage,
    )


def two_ecss(
    graph: nx.Graph,
    seed: int | random.Random | None = None,
    symmetry_breaking: bool = True,
    simulate_bfs: bool = True,
) -> ECSSResult:
    """Weighted 2-ECSS (Theorem 1.1): MST + distributed weighted TAP.

    Args:
        graph: A 2-edge-connected weighted graph.
        seed: Randomness for the TAP voting stage.
        symmetry_breaking: Disable to run the naive "add every maximum
            candidate" variant (ablation E9).
        simulate_bfs: Whether to run the BFS-tree construction as an actual
            message-passing simulation (default) or charge it analytically.

    Returns:
        An :class:`ECSSResult` whose edge set is 2-edge-connected and spans
        the graph.  ``metadata`` records the MST weight, the TAP stage result
        and the decomposition statistics used in the experiments.
    """
    if not is_k_edge_connected(graph, 2):
        raise ValueError("the input graph is not 2-edge-connected; 2-ECSS is infeasible")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    mst_stage = build_mst_with_fragments(graph, simulate_bfs=simulate_bfs)
    cost_model = CostModel(n=graph.number_of_nodes(), diameter=mst_stage.diameter)

    decomposition = build_decomposition(mst_stage.mst, mst_stage.fragments)
    ledger = RoundLedger()
    ledger.extend(mst_stage.ledger)
    ledger.add(
        "segment-decomposition",
        cost_model.decomposition_rounds(decomposition.max_segment_diameter()),
        note="Section 3.2 decomposition + Claim 3.1 information (O(D + sqrt n))",
    )

    tap_result = weighted_tap(
        graph,
        mst_stage.mst,
        decomposition=decomposition,
        seed=rng,
        symmetry_breaking=symmetry_breaking,
        cost_model=cost_model,
    )
    ledger.extend(tap_result.ledger)

    mst_edges = set(mst_stage.mst.tree_edges())
    mst_weight = sum(graph[u][v].get("weight", 1) for u, v in mst_edges)
    edges = mst_edges | tap_result.augmentation

    metadata = {
        "mst_weight": mst_weight,
        "tap_weight": tap_result.weight,
        "tap_iterations": tap_result.iterations,
        "tap_history": tap_result.history,
        "segments": decomposition.segment_count(),
        "max_segment_diameter": decomposition.max_segment_diameter(),
        "marked_vertices": len(decomposition.marked),
        "diameter": mst_stage.diameter,
        "round_bound": cost_model.tap_round_bound(),
    }
    return ECSSResult.from_edges(
        k=2,
        graph=graph,
        edges=edges,
        ledger=ledger,
        iterations=tap_result.iterations,
        algorithm="dory-2ecss",
        metadata=metadata,
    )
