"""Unweighted 3-ECSS via cycle space sampling (Section 5, Theorem 1.3).

The algorithm first builds a 2-approximate unweighted 2-ECSS ``H`` in O(D)
rounds (a BFS tree plus one covering non-tree edge per tree edge, following
[1]), then repeatedly augments ``H ∪ A`` towards 3-edge-connectivity:

1. sample cycle-space labels ``phi`` of ``H ∪ A`` (O(D) rounds, Lemma 5.5);
2. every edge outside ``H ∪ A`` computes how many *uncovered* cut pairs it
   covers via the label counts of Claim 5.8 -- its cost-effectiveness, since
   the graph is unweighted;
3. the maximisers become candidates and each joins ``A`` independently with
   probability ``p_i`` (the same guessing schedule as Section 4, without the
   MST filtering);
4. the algorithm stops once no tree edge shares its label with another edge
   (Claim 5.10), i.e. ``H ∪ A`` is 3-edge-connected.

Two implementations share this driver structure.  :func:`three_ecss` scores
each iteration with :class:`repro.core.fastaug.PathLabelKernel` -- candidate
tree paths as CSR flat arrays over integer tree-edge ids, per-label counts on
round-stamped arrays, and the power-of-two rounding collapsed to one
``int.bit_length()`` per value.  :func:`three_ecss_nx` is the historical
``Counter``-per-candidate implementation, retained as the differential oracle
(the ``diff-3ecss-kernel`` sweep asserts bit-identical results).  Both consume
the seeded RNG in exactly the same order -- labels first, then one draw per
candidate in ``repr`` order -- so outputs, iteration counts and histories
match bit for bit.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable

import networkx as nx

from repro.congest.cost_model import CostModel
from repro.congest.metrics import RoundLedger
from repro.core.cost_effectiveness import round_up_to_power_of_two
from repro.core.fastaug import GuessingSchedule, PathLabelKernel
from repro.core.result import ECSSResult
from repro.cycle_space.labels import compute_labels
from repro.graphs.connectivity import canonical_edge, is_k_edge_connected
from repro.graphs.fastgraph import hop_diameter
from repro.trees.lca import LCAIndex
from repro.trees.rooted import RootedTree

Edge = tuple[Hashable, Hashable]

__all__ = [
    "ThreeEcssIterationStats",
    "unweighted_two_ecss_2approx",
    "three_ecss",
    "three_ecss_nx",
]


@dataclass(frozen=True)
class ThreeEcssIterationStats:
    """Per-iteration diagnostics of the 3-ECSS augmentation loop."""

    iteration: int
    probability: float
    candidates: int
    added: int
    tree_edges_in_cut_pairs: int


def unweighted_two_ecss_2approx(
    graph: nx.Graph,
    root: Hashable | None = None,
    cost_model: CostModel | None = None,
) -> tuple[set[Edge], RootedTree, RoundLedger]:
    """The O(D)-round 2-approximation for unweighted 2-ECSS of [1] (used as ``H``).

    Builds a BFS tree and, for every tree edge, keeps one covering non-tree
    edge (chosen as the one covering the most still-uncovered tree edges, a
    small optimisation that only reduces the size).  The output has at most
    ``2 (n - 1)`` edges while any 2-ECSS has at least ``n`` edges, hence the
    factor-2 guarantee.

    Returns ``(edges, bfs_tree, ledger)``.
    """
    if not is_k_edge_connected(graph, 2):
        raise ValueError("the input graph is not 2-edge-connected")
    if cost_model is None:
        cost_model = CostModel(n=graph.number_of_nodes(), diameter=hop_diameter(graph))
    tree = RootedTree.bfs_tree(graph, root=root)
    lca = LCAIndex(tree)
    tree_edges = tree.tree_edges()
    tree_edge_set = set(tree_edges)

    paths: dict[Edge, frozenset[Edge]] = {}
    for u, v in graph.edges():
        edge = canonical_edge(u, v)
        if edge in tree_edge_set:
            continue
        paths[edge] = frozenset(lca.tree_path_edges(u, v))

    chosen: set[Edge] = set(tree_edge_set)
    covered: set[Edge] = set()
    # Greedily cover the tree edges, preferring edges that cover many at once.
    for edge, path in sorted(paths.items(), key=lambda item: (-len(item[1]), repr(item[0]))):
        if path - covered:
            chosen.add(edge)
            covered.update(path)
        if len(covered) == len(tree_edge_set):
            break
    uncovered = tree_edge_set - covered
    if uncovered:
        raise ValueError("the input graph is not 2-edge-connected (uncoverable bridges)")

    ledger = RoundLedger()
    ledger.add(
        "unweighted-2ecss-H",
        cost_model.unweighted_two_ecss_rounds(),
        note="O(D)-round 2-approximation for unweighted 2-ECSS [1]",
    )
    return chosen, tree, ledger


def _setup(
    graph: nx.Graph,
    seed: int | random.Random | None,
    simulate_bfs: bool,
) -> tuple[random.Random, CostModel, RoundLedger, set[Edge], RootedTree, LCAIndex]:
    """Shared preamble of both 3-ECSS implementations (validation + ``H``)."""
    if not is_k_edge_connected(graph, 3):
        raise ValueError("the input graph is not 3-edge-connected; 3-ECSS is infeasible")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = graph.number_of_nodes()
    cost_model = CostModel(n=n, diameter=hop_diameter(graph))
    ledger = RoundLedger()

    if simulate_bfs:
        from repro.congest.primitives import simulate_bfs_tree

        _, report = simulate_bfs_tree(graph)
        ledger.add_report(report)

    h_edges, tree, h_ledger = unweighted_two_ecss_2approx(graph, cost_model=cost_model)
    ledger.extend(h_ledger)
    return rng, cost_model, ledger, h_edges, tree, LCAIndex(tree)


def _result(
    graph: nx.Graph,
    h_edges: set[Edge],
    added: set[Edge],
    history: list[ThreeEcssIterationStats],
    mode: str,
    cost_model: CostModel,
    ledger: RoundLedger,
    iteration: int,
) -> ECSSResult:
    metadata = {
        "h_size": len(h_edges),
        "augmentation_size": len(added),
        "iterations_history": history,
        "diameter": cost_model.diameter,
        "round_bound": cost_model.three_ecss_round_bound(),
        "label_mode": mode,
    }
    return ECSSResult.from_edges(
        k=3,
        graph=graph,
        edges=h_edges | added,
        ledger=ledger,
        iterations=iteration,
        algorithm="dory-3ecss",
        metadata=metadata,
    )


def three_ecss(
    graph: nx.Graph,
    seed: int | random.Random | None = None,
    label_bits: int | None = None,
    exact_labels: bool = False,
    schedule_constant: int = 2,
    simulate_bfs: bool = False,
) -> ECSSResult:
    """Unweighted 3-ECSS (Theorem 1.3), scored by the flat-array kernel.

    Args:
        graph: A 3-edge-connected graph (weights, if any, are ignored --
            the problem is the minimum *size* 3-ECSS).
        seed: Randomness for labels and candidate activation.
        label_bits: Width of the cycle-space labels (default ``4 log n + 8``).
        exact_labels: Use deterministic covering-set labels instead of random
            ones (removes the 2^-b error; used by tests and the E7 ablation).
        schedule_constant: The ``M`` of the probability-doubling schedule.
        simulate_bfs: Run the BFS construction as a message-passing simulation.

    Returns:
        An :class:`ECSSResult` with ``k = 3``; the weight equals the number of
        edges because the problem is unweighted.  Bit-identical to
        :func:`three_ecss_nx` for the same arguments.
    """
    rng, cost_model, ledger, h_edges, tree, lca = _setup(graph, seed, simulate_bfs)
    kernel = PathLabelKernel(graph, lca, skip=h_edges)
    cand_repr = kernel.cand_repr

    added: set[Edge] = set()
    history: list[ThreeEcssIterationStats] = []
    mode = "exact" if exact_labels else "random"

    schedule = GuessingSchedule(
        graph.number_of_edges(), max(1, schedule_constant * cost_model.log_n)
    )
    previous_max: Fraction | None = None
    previous_probability_was_one = False

    n = graph.number_of_nodes()
    max_iterations = 16 * schedule_constant * cost_model.log_n ** 3 + 8 * n + 64
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(f"3-ECSS did not converge within {max_iterations} iterations")

        current = nx.Graph()
        current.add_nodes_from(graph.nodes())
        current.add_edges_from(h_edges | added)
        labelling = compute_labels(current, tree=tree, bits=label_bits, mode=mode,
                                   seed=rng, lca=lca)
        ledger.add(
            "3ecss-iteration",
            cost_model.three_ecss_iteration_rounds(),
            note=f"iteration {iteration} (labels + cost-effectiveness, O(D))",
        )

        tree_in_pairs, cand_ids, values, max_value = kernel.score_round(labelling.labels)
        if tree_in_pairs == 0:
            history.append(
                ThreeEcssIterationStats(
                    iteration=iteration,
                    probability=schedule.probability,
                    candidates=0,
                    added=0,
                    tree_edges_in_cut_pairs=0,
                )
            )
            break
        if not cand_ids:
            raise RuntimeError(
                "no remaining edge covers the remaining cut pairs; "
                "the input graph is not 3-edge-connected"
            )

        # rho~ = 2^bit_length(value), the smallest power of two strictly
        # greater than the integer Claim 5.8 value -- kept as a Fraction so
        # the Lemma 5.11 halving below stays exact.
        computed_max = Fraction(1 << max_value.bit_length())
        # Lemma 5.11's robustness tweak: the maximum rounded cost-effectiveness
        # is forced to be non-increasing, and to halve after a p = 1 iteration.
        maximum = computed_max
        if previous_max is not None:
            maximum = min(maximum, previous_max)
            if previous_probability_was_one:
                maximum = min(maximum, previous_max / 2)
        candidate_ids = sorted(
            (
                j
                for j, value in zip(cand_ids, values)
                if (1 << value.bit_length()) >= maximum
            ),
            key=cand_repr.__getitem__,
        )

        probability = schedule.update(maximum)
        previous_max = maximum
        # The schedule emits exact binary powers capped at 1, so >= 1.0 is a
        # reliable saturation test, not a float tolerance.
        previous_probability_was_one = probability >= 1.0  # repro: disable=DET004

        if probability >= 1.0:  # repro: disable=DET004
            active_ids = list(candidate_ids)
        else:
            active_ids = [j for j in candidate_ids if rng.random() < probability]
        kernel.mark_added(active_ids)
        added.update(kernel.cand_edges[j] for j in active_ids)

        history.append(
            ThreeEcssIterationStats(
                iteration=iteration,
                probability=probability,
                candidates=len(candidate_ids),
                added=len(active_ids),
                tree_edges_in_cut_pairs=tree_in_pairs,
            )
        )

    return _result(graph, h_edges, added, history, mode, cost_model, ledger, iteration)


def _score_round_nx(
    labels: dict[Edge, object],
    tree_edge_set: set[Edge],
    candidate_paths: dict[Edge, list[Edge]],
    added: set[Edge],
) -> tuple[int, dict[Edge, Fraction]]:
    """One iteration of the historical Claim 5.8 scoring (the oracle inner loop).

    Returns ``(tree_in_pairs, rounded)`` where *rounded* maps each candidate
    with positive cost-effectiveness to its rounded value ``rho~`` -- computed
    once per candidate and reused for both the maximum and the candidate
    filter.
    """
    n_phi = Counter(labels.values())
    tree_in_pairs = sum(1 for t in tree_edge_set if n_phi[labels[t]] > 1)
    if tree_in_pairs == 0:
        return 0, {}

    # Claim 5.8: cost-effectiveness of e is sum over labels on its path of
    # n_{phi,e} * (n_phi - n_{phi,e}).
    rounded: dict[Edge, Fraction] = {}
    for edge, path in candidate_paths.items():
        if edge in added:
            continue
        on_path = Counter(labels[t] for t in path)
        value = sum(
            count * (n_phi[label] - count) for label, count in on_path.items()
        )
        if value > 0:
            rounded[edge] = round_up_to_power_of_two(Fraction(value))
    return tree_in_pairs, rounded


def three_ecss_nx(
    graph: nx.Graph,
    seed: int | random.Random | None = None,
    label_bits: int | None = None,
    exact_labels: bool = False,
    schedule_constant: int = 2,
    simulate_bfs: bool = False,
) -> ECSSResult:
    """Historical set/``Counter`` 3-ECSS, retained as the differential oracle.

    Same arguments and bit-identical output as :func:`three_ecss`; every
    iteration rebuilds label counts with :class:`collections.Counter` per
    candidate path and compares exact :class:`~fractions.Fraction` values.
    """
    rng, cost_model, ledger, h_edges, tree, lca = _setup(graph, seed, simulate_bfs)
    tree_edge_set = set(tree.tree_edges())

    # Pre-compute the tree path of every potential candidate edge.
    candidate_paths: dict[Edge, list[Edge]] = {}
    for u, v in graph.edges():
        edge = canonical_edge(u, v)
        if edge in h_edges:
            continue
        candidate_paths[edge] = [canonical_edge(a, b) for a, b in lca.tree_path_edges(u, v)]

    added: set[Edge] = set()
    history: list[ThreeEcssIterationStats] = []
    mode = "exact" if exact_labels else "random"

    schedule = GuessingSchedule(
        graph.number_of_edges(), max(1, schedule_constant * cost_model.log_n)
    )
    previous_max: Fraction | None = None
    previous_probability_was_one = False

    n = graph.number_of_nodes()
    max_iterations = 16 * schedule_constant * cost_model.log_n ** 3 + 8 * n + 64
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(f"3-ECSS did not converge within {max_iterations} iterations")

        current = nx.Graph()
        current.add_nodes_from(graph.nodes())
        current.add_edges_from(h_edges | added)
        labelling = compute_labels(current, tree=tree, bits=label_bits, mode=mode,
                                   seed=rng, lca=lca)
        ledger.add(
            "3ecss-iteration",
            cost_model.three_ecss_iteration_rounds(),
            note=f"iteration {iteration} (labels + cost-effectiveness, O(D))",
        )

        tree_in_pairs, rounded = _score_round_nx(
            labelling.labels, tree_edge_set, candidate_paths, added
        )
        if tree_in_pairs == 0:
            history.append(
                ThreeEcssIterationStats(
                    iteration=iteration,
                    probability=schedule.probability,
                    candidates=0,
                    added=0,
                    tree_edges_in_cut_pairs=0,
                )
            )
            break
        if not rounded:
            raise RuntimeError(
                "no remaining edge covers the remaining cut pairs; "
                "the input graph is not 3-edge-connected"
            )

        computed_max = max(rounded.values())
        # Lemma 5.11's robustness tweak: the maximum rounded cost-effectiveness
        # is forced to be non-increasing, and to halve after a p = 1 iteration.
        maximum = computed_max
        if previous_max is not None:
            maximum = min(maximum, previous_max)
            if previous_probability_was_one:
                maximum = min(maximum, previous_max / 2)
        candidates = sorted(
            (edge for edge, value in rounded.items() if value >= maximum),
            key=repr,
        )

        probability = schedule.update(maximum)
        previous_max = maximum
        # The schedule emits exact binary powers capped at 1, so >= 1.0 is a
        # reliable saturation test, not a float tolerance.
        previous_probability_was_one = probability >= 1.0  # repro: disable=DET004

        if probability >= 1.0:  # repro: disable=DET004
            active = list(candidates)
        else:
            active = [edge for edge in candidates if rng.random() < probability]
        added.update(active)

        history.append(
            ThreeEcssIterationStats(
                iteration=iteration,
                probability=probability,
                candidates=len(candidates),
                added=len(active),
                tree_edges_in_cut_pairs=tree_in_pairs,
            )
        )

    return _result(graph, h_edges, added, history, mode, cost_model, ledger, iteration)
