"""Weighted k-ECSS (Theorem 1.2) via iterated augmentation (Section 4).

Each level ``i`` raises the connectivity of the running subgraph ``H`` from
``i - 1`` to ``i`` by covering every cut of size ``i - 1`` of ``H``:

1. every edge outside ``H ∪ A`` computes its rounded cost-effectiveness;
2. the maximisers become candidates;
3. every candidate becomes *active* with probability ``p_i`` (the "guessing"
   schedule: ``p`` starts at ``1 / 2^ceil(log m)`` and doubles every
   ``M log n`` iterations, resetting when the maximum rounded
   cost-effectiveness drops);
4. an MST of ``G`` under weights (A: 0, active candidates: 1, rest: 2) filters
   the active candidates -- only those in the MST join ``A``, which keeps ``A``
   acyclic (Claim 4.1) and therefore at most ``n - 1`` edges per level;
5. the level ends when every cut of size ``i - 1`` is covered.

Level 1 is solved by the MST itself (the MST is an optimal augmentation from
connectivity 0 to 1), exactly as the 2-ECSS algorithm does; the generic
procedure is used for every level ``i >= 2``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.congest.cost_model import CostModel
from repro.congest.metrics import RoundLedger
from repro.core.augmentation import (
    AugmentationResult,
    build_subgraph,
    compose_augmentations,
)
from repro.core.cost_effectiveness import INFINITE_EFFECTIVENESS, rounded_cost_effectiveness
from repro.core.result import ECSSResult
from repro.graphs.connectivity import canonical_edge, is_k_edge_connected
from repro.graphs.cuts import Cut, enumerate_cuts_of_size
from repro.graphs.fastgraph import hop_diameter
from repro.mst.sequential import minimum_spanning_tree

Edge = tuple[Hashable, Hashable]

__all__ = ["AugIterationStats", "augment_to_k", "k_ecss"]


@dataclass(frozen=True)
class AugIterationStats:
    """Per-iteration diagnostics of one ``Aug_k`` level."""

    iteration: int
    probability: float
    candidates: int
    active: int
    added: int
    uncovered_remaining: int


def _probability_schedule_start(m: int) -> float:
    """Initial activation probability 1 / 2^ceil(log2 m)."""
    return 1.0 / (2 ** max(1, math.ceil(math.log2(max(m, 2)))))


def augment_to_k(
    graph: nx.Graph,
    current_edges: frozenset[Edge],
    k: int,
    seed: int | random.Random | None = None,
    schedule_constant: int = 2,
    cost_model: CostModel | None = None,
    use_mst_filter: bool = True,
    max_iterations: int | None = None,
    cut_seed: int | None = None,
) -> AugmentationResult:
    """Raise the connectivity of ``current_edges`` from ``k - 1`` to ``k`` (Section 4).

    Args:
        graph: The k-edge-connected input graph ``G``.
        current_edges: Edges of the (k-1)-edge-connected subgraph ``H``.
        k: Target connectivity of this level.
        seed: Randomness for candidate activation.
        schedule_constant: The ``M`` in "double ``p`` every ``M log n``
            iterations" (the paper leaves the constant to the analysis).
        cost_model: Round cost model (built from the graph when omitted).
        use_mst_filter: Disable to add every active candidate without the MST
            filtering of Line 4 (ablation E10 / Claim 4.1 demonstration).
        max_iterations: Safety bound on iterations.
        cut_seed: Seed for the randomised cut enumeration (sizes >= 3).

    Returns:
        An :class:`AugmentationResult` whose ``added`` edges, together with
        ``current_edges``, form a k-edge-connected spanning subgraph.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if cost_model is None:
        cost_model = CostModel(n=n, diameter=hop_diameter(graph))
    if max_iterations is None:
        max_iterations = 16 * schedule_constant * cost_model.log_n ** 3 + 8 * n + 64

    subgraph = build_subgraph(graph, current_edges)
    ledger = RoundLedger()
    ledger.add(
        "aug-state-broadcast",
        cost_model.aug_state_broadcast_rounds(len(current_edges)),
        note=f"all vertices learn H (|H| = {len(current_edges)} edges, O(D + |H|))",
    )

    cuts: list[Cut] = enumerate_cuts_of_size(subgraph, k - 1, seed=cut_seed)
    if not cuts:
        return AugmentationResult(
            added=frozenset(), weight=0, iterations=0, ledger=ledger,
            metadata={"cuts": 0, "history": []},
        )

    current = frozenset(canonical_edge(u, v) for u, v in current_edges)
    candidates_pool = [
        canonical_edge(u, v) for u, v in graph.edges() if canonical_edge(u, v) not in current
    ]
    weight_of = {
        edge: graph[edge[0]][edge[1]].get("weight", 1) for edge in candidates_pool
    }
    covers: dict[Edge, frozenset[int]] = {}
    for edge in candidates_pool:
        u, v = edge
        covers[edge] = frozenset(
            index for index, cut in enumerate(cuts) if (u in cut.side) != (v in cut.side)
        )

    uncovered: set[int] = set(range(len(cuts)))
    added: set[Edge] = set()
    history: list[AugIterationStats] = []

    probability = _probability_schedule_start(m)
    phase_length = max(1, schedule_constant * cost_model.log_n)
    phase_counter = 0
    current_max = None
    effectiveness_dirty = True
    effectiveness: dict[Edge, object] = {}

    iteration = 0
    while uncovered:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(
                f"Aug_{k} did not converge within {max_iterations} iterations"
            )

        # Lines 1-2: (re)compute rounded cost-effectiveness when coverage changed.
        if effectiveness_dirty:
            effectiveness = {}
            for edge in candidates_pool:
                if edge in added:
                    continue
                live = len(covers[edge] & uncovered)
                if live == 0:
                    continue
                effectiveness[edge] = rounded_cost_effectiveness(live, weight_of[edge])
            effectiveness_dirty = False
        if not effectiveness:
            raise RuntimeError(
                f"no edge of G covers the remaining cuts of size {k - 1}; "
                f"the input graph is not {k}-edge-connected"
            )
        maximum = max(effectiveness.values())
        candidate_edges = sorted(
            (edge for edge, value in effectiveness.items() if value == maximum), key=repr
        )

        # Probability schedule bookkeeping.
        if maximum != current_max:
            current_max = maximum
            probability = _probability_schedule_start(m)
            phase_counter = 0
        elif phase_counter >= phase_length and probability < 1.0:
            probability = min(1.0, probability * 2)
            phase_counter = 0
        phase_counter += 1

        # Line 3: activation.
        if probability >= 1.0:
            active = list(candidate_edges)
        else:
            active = [edge for edge in candidate_edges if rng.random() < probability]

        # Line 4: MST filtering keeps A acyclic.
        newly_added: list[Edge] = []
        if active:
            if use_mst_filter:
                chosen = _mst_filter(graph, added, active)
            else:
                chosen = list(active)
            for edge in chosen:
                if edge not in added:
                    added.add(edge)
                    newly_added.append(edge)

        if newly_added:
            for edge in newly_added:
                uncovered -= covers[edge]
            effectiveness_dirty = True

        ledger.add(
            "aug-iteration",
            cost_model.aug_iteration_rounds(len(newly_added)),
            note=f"Aug_{k} iteration {iteration} (Lemma 4.4)",
        )
        history.append(
            AugIterationStats(
                iteration=iteration,
                probability=probability,
                candidates=len(candidate_edges),
                active=len(active),
                added=len(newly_added),
                uncovered_remaining=len(uncovered),
            )
        )

    return AugmentationResult(
        added=frozenset(added),
        weight=sum(weight_of[edge] for edge in added),
        iterations=iteration,
        ledger=ledger,
        metadata={"cuts": len(cuts), "history": history, "k": k},
    )


def _mst_filter(graph: nx.Graph, zero_weight_edges: set[Edge], active: list[Edge]) -> list[Edge]:
    """Line 4: keep only the active candidates that appear in the filtered MST.

    The MST is computed over ``G`` with weight 0 for edges already in ``A``,
    weight 1 for active candidates and weight 2 for everything else; ties are
    broken by canonical edge id, so the filter is deterministic given the set
    of active candidates.
    """
    active_set = set(active)
    reweighted = nx.Graph()
    reweighted.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        edge = canonical_edge(u, v)
        if edge in zero_weight_edges:
            weight = 0
        elif edge in active_set:
            weight = 1
        else:
            weight = 2
        reweighted.add_edge(u, v, weight=weight)
    mst = minimum_spanning_tree(reweighted)
    return [edge for edge in active if mst.has_edge(*edge)]


def k_ecss(
    graph: nx.Graph,
    k: int,
    seed: int | random.Random | None = None,
    schedule_constant: int = 2,
    use_mst_filter: bool = True,
) -> ECSSResult:
    """Weighted k-ECSS (Theorem 1.2): iterated ``Aug_i`` for ``i = 1..k``.

    Level 1 uses the MST (optimal for raising connectivity from 0 to 1);
    levels 2..k use :func:`augment_to_k`.  The composition argument of
    Claim 2.1 gives an O(k log n) expected approximation ratio.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not is_k_edge_connected(graph, k):
        raise ValueError(f"the input graph is not {k}-edge-connected; k-ECSS is infeasible")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    cost_model = CostModel(n=graph.number_of_nodes(), diameter=hop_diameter(graph))

    def mst_solver(g: nx.Graph, current: frozenset[Edge], level: int) -> AugmentationResult:
        del current, level
        tree = minimum_spanning_tree(g)
        ledger = RoundLedger()
        ledger.add("mst-kutten-peleg", cost_model.mst_rounds(),
                   note="Aug_1 solved by the MST (O(D + sqrt n log* n) rounds [25])")
        edges = frozenset(canonical_edge(u, v) for u, v in tree.edges())
        weight = sum(g[u][v].get("weight", 1) for u, v in edges)
        return AugmentationResult(added=edges, weight=weight, iterations=1, ledger=ledger,
                                  metadata={"stage": "mst"})

    def aug_solver(g: nx.Graph, current: frozenset[Edge], level: int) -> AugmentationResult:
        return augment_to_k(
            g,
            current,
            level,
            seed=rng,
            schedule_constant=schedule_constant,
            cost_model=cost_model,
            use_mst_filter=use_mst_filter,
        )

    solvers = {1: mst_solver}
    for level in range(2, k + 1):
        solvers[level] = aug_solver

    edges, iterations, ledger, stages = compose_augmentations(graph, k, solvers)
    metadata = {
        "stages": [
            {
                "level": index + 1,
                "added": len(stage.added),
                "weight": stage.weight,
                "iterations": stage.iterations,
                "cuts": stage.metadata.get("cuts"),
            }
            for index, stage in enumerate(stages)
        ],
        "round_bound": cost_model.k_ecss_round_bound(k),
        "diameter": cost_model.diameter,
    }
    return ECSSResult.from_edges(
        k=k,
        graph=graph,
        edges=edges,
        ledger=ledger,
        iterations=iterations,
        algorithm="dory-kecss",
        metadata=metadata,
    )
