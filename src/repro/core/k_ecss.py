"""Weighted k-ECSS (Theorem 1.2) via iterated augmentation (Section 4).

Each level ``i`` raises the connectivity of the running subgraph ``H`` from
``i - 1`` to ``i`` by covering every cut of size ``i - 1`` of ``H``:

1. every edge outside ``H ∪ A`` computes its rounded cost-effectiveness;
2. the maximisers become candidates;
3. every candidate becomes *active* with probability ``p_i`` (the "guessing"
   schedule: ``p`` starts at ``1 / 2^ceil(log m)`` and doubles every
   ``M log n`` iterations, resetting when the maximum rounded
   cost-effectiveness drops);
4. an MST of ``G`` under weights (A: 0, active candidates: 1, rest: 2) filters
   the active candidates -- only those in the MST join ``A``, which keeps ``A``
   acyclic (Claim 4.1) and therefore at most ``n - 1`` edges per level;
5. the level ends when every cut of size ``i - 1`` is covered.

Level 1 is solved by the MST itself (the MST is an optimal augmentation from
connectivity 0 to 1), exactly as the 2-ECSS algorithm does; the generic
procedure is used for every level ``i >= 2``.

Two implementations share this structure.  :func:`augment_to_k` keeps the
cut-coverage state in :class:`repro.core.fastaug.BitsetCoverKernel` -- packed
integer bitmasks with incrementally maintained live-cover counters, so each
iteration costs a flat counter scan instead of ``O(|E| * |cuts|)`` frozenset
intersections.  :func:`augment_to_k_nx` (and :func:`k_ecss_nx` above it) is
the historical frozenset implementation, retained as the differential oracle;
the ``diff-kecss-kernel`` sweep asserts bit-identical added-edge sets,
weights, iteration counts and histories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable

import networkx as nx

from repro.congest.cost_model import CostModel
from repro.congest.metrics import RoundLedger
from repro.core.augmentation import (
    AugmentationResult,
    build_subgraph,
    compose_augmentations,
)
from repro.core.cost_effectiveness import rounded_cost_effectiveness
from repro.core.fastaug import BitsetCoverKernel, GuessingSchedule
from repro.core.result import ECSSResult
from repro.graphs.connectivity import canonical_edge, is_k_edge_connected
from repro.graphs.cuts import Cut, enumerate_cuts_of_size
from repro.graphs.fastgraph import hop_diameter
from repro.mst.sequential import minimum_spanning_tree

Edge = tuple[Hashable, Hashable]

__all__ = [
    "AugIterationStats",
    "augment_to_k",
    "augment_to_k_nx",
    "k_ecss",
    "k_ecss_nx",
]


@dataclass(frozen=True)
class AugIterationStats:
    """Per-iteration diagnostics of one ``Aug_k`` level."""

    iteration: int
    probability: float
    candidates: int
    active: int
    added: int
    uncovered_remaining: int


def _level_setup(
    graph: nx.Graph,
    current_edges: frozenset[Edge],
    k: int,
    cost_model: CostModel | None,
    cut_seed: int | None,
) -> tuple[CostModel, RoundLedger, list[Cut], list[Edge], dict[Edge, int]]:
    """Shared preamble of one ``Aug_k`` level (broadcast + cut enumeration)."""
    if cost_model is None:
        cost_model = CostModel(n=graph.number_of_nodes(), diameter=hop_diameter(graph))
    subgraph = build_subgraph(graph, current_edges)
    ledger = RoundLedger()
    ledger.add(
        "aug-state-broadcast",
        cost_model.aug_state_broadcast_rounds(len(current_edges)),
        note=f"all vertices learn H (|H| = {len(current_edges)} edges, O(D + |H|))",
    )
    cuts: list[Cut] = enumerate_cuts_of_size(subgraph, k - 1, seed=cut_seed)
    current = frozenset(canonical_edge(u, v) for u, v in current_edges)
    candidates_pool = [
        canonical_edge(u, v) for u, v in graph.edges() if canonical_edge(u, v) not in current
    ]
    weight_of = {
        edge: graph[edge[0]][edge[1]].get("weight", 1) for edge in candidates_pool
    }
    return cost_model, ledger, cuts, candidates_pool, weight_of


def augment_to_k(
    graph: nx.Graph,
    current_edges: frozenset[Edge],
    k: int,
    seed: int | random.Random | None = None,
    schedule_constant: int = 2,
    cost_model: CostModel | None = None,
    use_mst_filter: bool = True,
    max_iterations: int | None = None,
    cut_seed: int | None = None,
) -> AugmentationResult:
    """Raise the connectivity of ``current_edges`` from ``k - 1`` to ``k`` (Section 4).

    Args:
        graph: The k-edge-connected input graph ``G``.
        current_edges: Edges of the (k-1)-edge-connected subgraph ``H``.
        k: Target connectivity of this level.
        seed: Randomness for candidate activation.
        schedule_constant: The ``M`` in "double ``p`` every ``M log n``
            iterations" (the paper leaves the constant to the analysis).
        cost_model: Round cost model (built from the graph when omitted).
        use_mst_filter: Disable to add every active candidate without the MST
            filtering of Line 4 (ablation E10 / Claim 4.1 demonstration).
        max_iterations: Safety bound on iterations.
        cut_seed: Seed for the randomised cut enumeration (sizes >= 3).

    Returns:
        An :class:`AugmentationResult` whose ``added`` edges, together with
        ``current_edges``, form a k-edge-connected spanning subgraph.
        Bit-identical to :func:`augment_to_k_nx` for the same arguments.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    cost_model, ledger, cuts, candidates_pool, weight_of = _level_setup(
        graph, current_edges, k, cost_model, cut_seed
    )
    if max_iterations is None:
        max_iterations = 16 * schedule_constant * cost_model.log_n ** 3 + 8 * n + 64
    if not cuts:
        return AugmentationResult(
            added=frozenset(), weight=0, iterations=0, ledger=ledger,
            metadata={"cuts": 0, "history": []},
        )

    kernel = BitsetCoverKernel(
        candidates_pool,
        [weight_of[edge] for edge in candidates_pool],
        [
            [index for index, cut in enumerate(cuts) if (u in cut.side) != (v in cut.side)]
            for u, v in candidates_pool
        ],
        len(cuts),
    )
    index_of = {edge: j for j, edge in enumerate(candidates_pool)}
    cand_repr = kernel.cand_repr

    added: set[Edge] = set()
    history: list[AugIterationStats] = []
    schedule = GuessingSchedule(m, max(1, schedule_constant * cost_model.log_n))

    iteration = 0
    while not kernel.all_covered:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(
                f"Aug_{k} did not converge within {max_iterations} iterations"
            )

        # Lines 1-2: one flat scan of the incrementally maintained counters.
        cand_ids, exponents, maximum = kernel.score()
        if maximum is None:
            raise RuntimeError(
                f"no edge of G covers the remaining cuts of size {k - 1}; "
                f"the input graph is not {k}-edge-connected"
            )
        candidate_ids = sorted(
            (j for j, exponent in zip(cand_ids, exponents) if exponent == maximum),
            key=cand_repr.__getitem__,
        )

        probability = schedule.update(maximum)

        # Line 3: activation.
        if probability >= 1.0:
            active_ids = list(candidate_ids)
        else:
            active_ids = [j for j in candidate_ids if rng.random() < probability]
        active = [kernel.cand_edges[j] for j in active_ids]

        # Line 4: MST filtering keeps A acyclic.
        newly_added: list[Edge] = []
        if active:
            if use_mst_filter:
                chosen = _mst_filter(graph, added, active)
            else:
                chosen = list(active)
            for edge in chosen:
                if edge not in added:
                    added.add(edge)
                    newly_added.append(edge)

        if newly_added:
            kernel.add_many(index_of[edge] for edge in newly_added)

        ledger.add(
            "aug-iteration",
            cost_model.aug_iteration_rounds(len(newly_added)),
            note=f"Aug_{k} iteration {iteration} (Lemma 4.4)",
        )
        history.append(
            AugIterationStats(
                iteration=iteration,
                probability=probability,
                candidates=len(candidate_ids),
                active=len(active),
                added=len(newly_added),
                uncovered_remaining=kernel.uncovered_count,
            )
        )

    return AugmentationResult(
        added=frozenset(added),
        weight=sum(weight_of[edge] for edge in added),
        iterations=iteration,
        ledger=ledger,
        metadata={"cuts": len(cuts), "history": history, "k": k},
    )


def _recompute_effectiveness_nx(
    candidates_pool: list[Edge],
    added: set[Edge],
    covers: dict[Edge, frozenset[int]],
    uncovered: set[int],
    weight_of: dict[Edge, int],
) -> dict[Edge, object]:
    """The historical O(|E| * |cuts|) recompute (the oracle inner loop)."""
    effectiveness: dict[Edge, object] = {}
    for edge in candidates_pool:
        if edge in added:
            continue
        live = len(covers[edge] & uncovered)
        if live == 0:
            continue
        effectiveness[edge] = rounded_cost_effectiveness(live, weight_of[edge])
    return effectiveness


def augment_to_k_nx(
    graph: nx.Graph,
    current_edges: frozenset[Edge],
    k: int,
    seed: int | random.Random | None = None,
    schedule_constant: int = 2,
    cost_model: CostModel | None = None,
    use_mst_filter: bool = True,
    max_iterations: int | None = None,
    cut_seed: int | None = None,
) -> AugmentationResult:
    """Historical frozenset ``Aug_k``, retained as the differential oracle.

    Same arguments and bit-identical output as :func:`augment_to_k`; coverage
    is recomputed with frozenset intersections against the uncovered-cut set
    whenever edges join ``A``.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    cost_model, ledger, cuts, candidates_pool, weight_of = _level_setup(
        graph, current_edges, k, cost_model, cut_seed
    )
    if max_iterations is None:
        max_iterations = 16 * schedule_constant * cost_model.log_n ** 3 + 8 * n + 64
    if not cuts:
        return AugmentationResult(
            added=frozenset(), weight=0, iterations=0, ledger=ledger,
            metadata={"cuts": 0, "history": []},
        )

    covers: dict[Edge, frozenset[int]] = {}
    for edge in candidates_pool:
        u, v = edge
        covers[edge] = frozenset(
            index for index, cut in enumerate(cuts) if (u in cut.side) != (v in cut.side)
        )

    uncovered: set[int] = set(range(len(cuts)))
    added: set[Edge] = set()
    history: list[AugIterationStats] = []

    schedule = GuessingSchedule(m, max(1, schedule_constant * cost_model.log_n))
    effectiveness_dirty = True
    effectiveness: dict[Edge, object] = {}

    iteration = 0
    while uncovered:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(
                f"Aug_{k} did not converge within {max_iterations} iterations"
            )

        # Lines 1-2: (re)compute rounded cost-effectiveness when coverage changed.
        if effectiveness_dirty:
            effectiveness = _recompute_effectiveness_nx(
                candidates_pool, added, covers, uncovered, weight_of
            )
            effectiveness_dirty = False
        if not effectiveness:
            raise RuntimeError(
                f"no edge of G covers the remaining cuts of size {k - 1}; "
                f"the input graph is not {k}-edge-connected"
            )
        maximum = max(effectiveness.values())
        candidate_edges = sorted(
            (edge for edge, value in effectiveness.items() if value == maximum), key=repr
        )

        probability = schedule.update(maximum)

        # Line 3: activation.
        if probability >= 1.0:
            active = list(candidate_edges)
        else:
            active = [edge for edge in candidate_edges if rng.random() < probability]

        # Line 4: MST filtering keeps A acyclic.
        newly_added: list[Edge] = []
        if active:
            if use_mst_filter:
                chosen = _mst_filter(graph, added, active)
            else:
                chosen = list(active)
            for edge in chosen:
                if edge not in added:
                    added.add(edge)
                    newly_added.append(edge)

        if newly_added:
            for edge in newly_added:
                uncovered -= covers[edge]
            effectiveness_dirty = True

        ledger.add(
            "aug-iteration",
            cost_model.aug_iteration_rounds(len(newly_added)),
            note=f"Aug_{k} iteration {iteration} (Lemma 4.4)",
        )
        history.append(
            AugIterationStats(
                iteration=iteration,
                probability=probability,
                candidates=len(candidate_edges),
                active=len(active),
                added=len(newly_added),
                uncovered_remaining=len(uncovered),
            )
        )

    return AugmentationResult(
        added=frozenset(added),
        weight=sum(weight_of[edge] for edge in added),
        iterations=iteration,
        ledger=ledger,
        metadata={"cuts": len(cuts), "history": history, "k": k},
    )


def _mst_filter(graph: nx.Graph, zero_weight_edges: set[Edge], active: list[Edge]) -> list[Edge]:
    """Line 4: keep only the active candidates that appear in the filtered MST.

    The MST is computed over ``G`` with weight 0 for edges already in ``A``,
    weight 1 for active candidates and weight 2 for everything else; ties are
    broken by canonical edge id, so the filter is deterministic given the set
    of active candidates.
    """
    active_set = set(active)
    reweighted = nx.Graph()
    reweighted.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        edge = canonical_edge(u, v)
        if edge in zero_weight_edges:
            weight = 0
        elif edge in active_set:
            weight = 1
        else:
            weight = 2
        reweighted.add_edge(u, v, weight=weight)
    mst = minimum_spanning_tree(reweighted)
    return [edge for edge in active if mst.has_edge(*edge)]


def _k_ecss_impl(
    graph: nx.Graph,
    k: int,
    seed: int | random.Random | None,
    schedule_constant: int,
    use_mst_filter: bool,
    level_solver: Callable[..., AugmentationResult],
) -> ECSSResult:
    """Shared Theorem 1.2 composition driver (MST level + ``Aug_2..k``)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if not is_k_edge_connected(graph, k):
        raise ValueError(f"the input graph is not {k}-edge-connected; k-ECSS is infeasible")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    cost_model = CostModel(n=graph.number_of_nodes(), diameter=hop_diameter(graph))

    def mst_solver(g: nx.Graph, current: frozenset[Edge], level: int) -> AugmentationResult:
        del current, level
        tree = minimum_spanning_tree(g)
        ledger = RoundLedger()
        ledger.add("mst-kutten-peleg", cost_model.mst_rounds(),
                   note="Aug_1 solved by the MST (O(D + sqrt n log* n) rounds [25])")
        edges = frozenset(canonical_edge(u, v) for u, v in tree.edges())
        weight = sum(g[u][v].get("weight", 1) for u, v in edges)
        return AugmentationResult(added=edges, weight=weight, iterations=1, ledger=ledger,
                                  metadata={"stage": "mst"})

    def aug_solver(g: nx.Graph, current: frozenset[Edge], level: int) -> AugmentationResult:
        return level_solver(
            g,
            current,
            level,
            seed=rng,
            schedule_constant=schedule_constant,
            cost_model=cost_model,
            use_mst_filter=use_mst_filter,
        )

    solvers = {1: mst_solver}
    for level in range(2, k + 1):
        solvers[level] = aug_solver

    edges, iterations, ledger, stages = compose_augmentations(graph, k, solvers)
    metadata = {
        "stages": [
            {
                "level": index + 1,
                "added": len(stage.added),
                "weight": stage.weight,
                "iterations": stage.iterations,
                "cuts": stage.metadata.get("cuts"),
            }
            for index, stage in enumerate(stages)
        ],
        "round_bound": cost_model.k_ecss_round_bound(k),
        "diameter": cost_model.diameter,
    }
    return ECSSResult.from_edges(
        k=k,
        graph=graph,
        edges=edges,
        ledger=ledger,
        iterations=iterations,
        algorithm="dory-kecss",
        metadata=metadata,
    )


def k_ecss(
    graph: nx.Graph,
    k: int,
    seed: int | random.Random | None = None,
    schedule_constant: int = 2,
    use_mst_filter: bool = True,
) -> ECSSResult:
    """Weighted k-ECSS (Theorem 1.2): iterated ``Aug_i`` for ``i = 1..k``.

    Level 1 uses the MST (optimal for raising connectivity from 0 to 1);
    levels 2..k use the kernel-backed :func:`augment_to_k`.  The composition
    argument of Claim 2.1 gives an O(k log n) expected approximation ratio.
    """
    return _k_ecss_impl(graph, k, seed, schedule_constant, use_mst_filter, augment_to_k)


def k_ecss_nx(
    graph: nx.Graph,
    k: int,
    seed: int | random.Random | None = None,
    schedule_constant: int = 2,
    use_mst_filter: bool = True,
) -> ECSSResult:
    """:func:`k_ecss` over the historical :func:`augment_to_k_nx` oracle."""
    return _k_ecss_impl(graph, k, seed, schedule_constant, use_mst_filter, augment_to_k_nx)
