"""Flat-array kernels for the augmentation solvers (Sections 4 and 5).

These are the last two Python-object inner loops of the reproduction, ported
to the same CSR/array style as :mod:`repro.tap.fastcover` (TAP coverage) and
:mod:`repro.graphs.fastgraph` (verification):

* :class:`PathLabelKernel` -- the per-iteration cost-effectiveness scoring of
  the 3-ECSS algorithm (Claim 5.8).  Candidate tree paths are materialised
  once as CSR flat arrays over integer tree-edge ids (extracted with
  :class:`repro.graphs.fastgraph.TreePathIndex` through the caller's
  :class:`~repro.trees.lca.LCAIndex`); each iteration assigns dense integer
  ids to the fresh labels, turns the tree-edge labels into one flat array,
  and scores every candidate with round-stamped count arrays -- no
  ``Counter`` is allocated per candidate per iteration, and the power-of-two
  rounding collapses to one ``int.bit_length()`` per value.

* :class:`BitsetCoverKernel` -- the cut-coverage bookkeeping of one ``Aug_k``
  level (Section 4).  The ``covers`` relation is packed into one integer
  bitmask per candidate edge plus its CSR transpose (cut id -> covering edge
  ids); the still-uncovered cut set is a single integer mask and the live
  cover count ``|C_e|`` of every edge is maintained *incrementally* when
  edges join ``A``, so the per-iteration recompute drops from
  ``O(|E| * |cuts|)`` frozenset intersections to a flat counter scan after
  ``O(changed)`` update work.

* :class:`GuessingSchedule` -- the probability-guessing schedule shared by
  ``Aug_k`` and the 3-ECSS loop: ``p`` starts at ``1 / 2^ceil(log2 m)``,
  doubles every ``phase_length`` iterations while the maximum rounded
  cost-effectiveness is unchanged, and restarts whenever the maximum changes.
  Both solvers keep the maximum non-increasing (exactly in ``Aug_k``, by the
  Lemma 5.11 clamp in 3-ECSS), so "changes" means "drops" -- the paper's
  reset rule.  The phase counter freezes once ``p`` reaches 1, fixing the
  historical bookkeeping that let it grow without bound while waiting for
  the next maximum drop.

Rounded cost-effectiveness values are represented by their integer exponents
(``rho~ = 2^e``), compared exactly against the ``Fraction`` values the
retained ``*_nx`` oracles produce; the ``diff-3ecss-kernel`` /
``diff-kecss-kernel`` differential sweeps assert bit-identical added-edge
sets, weights, iteration counts and histories.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.core.cost_effectiveness import INFINITE_EFFECTIVENESS
from repro.graphs.connectivity import canonical_edge
from repro.trees.lca import LCAIndex

Edge = tuple[Hashable, Hashable]

__all__ = [
    "GuessingSchedule",
    "PathLabelKernel",
    "BitsetCoverKernel",
    "probability_schedule_start",
    "rounded_exponent",
]

_UNSET = object()


def probability_schedule_start(m: int) -> float:
    """Initial activation probability ``1 / 2^ceil(log2 m)`` (Section 4)."""
    # Exact despite floats: log2 of an int is only rounded by ceil() to pick
    # the exponent, and 1 / 2^e is a binary power, representable exactly.
    return 1.0 / (2 ** max(1, math.ceil(math.log2(max(m, 2)))))  # repro: disable=DET004


def rounded_exponent(uncovered: int, weight: int) -> int:
    """The exponent ``e`` with ``rho~ = 2^e``, the smallest power of two
    strictly greater than ``uncovered / weight`` (both positive).

    Exact integer arithmetic: ``2^(e-1) <= uncovered / weight < 2^e``, the
    same value :func:`repro.core.cost_effectiveness.rounded_cost_effectiveness`
    returns as a ``Fraction`` -- without constructing one.
    """
    shift = uncovered.bit_length() - weight.bit_length()
    if shift >= 0:
        return shift + 1 if uncovered >= weight << shift else shift
    return shift + 1 if uncovered << -shift >= weight else shift


class GuessingSchedule:
    """The Section 4 probability-guessing schedule (shared by both solvers).

    Args:
        m: Number of graph edges (sets the starting probability).
        phase_length: Iterations between doublings (``M log n``).

    The caller feeds :meth:`update` the iteration's maximum rounded
    cost-effectiveness (any totally ordered representation -- ``Fraction``,
    integer exponent, or :data:`INFINITE_EFFECTIVENESS` -- as long as it is
    consistent across iterations) and receives the activation probability.
    """

    __slots__ = ("start", "phase_length", "probability", "phase_counter", "_current_max")

    def __init__(self, m: int, phase_length: int) -> None:
        self.start = probability_schedule_start(m)
        self.phase_length = max(1, phase_length)
        self.probability = self.start
        self.phase_counter = 0
        self._current_max = _UNSET

    def update(self, maximum: object) -> float:
        """Advance one iteration under *maximum*; return the probability."""
        if maximum != self._current_max:
            # The maximum dropped (it is non-increasing in both solvers):
            # restart the guessing schedule for the new cost-effectiveness
            # class, exactly as Section 4 prescribes.
            self._current_max = maximum
            self.probability = self.start
            self.phase_counter = 0
        # The schedule only ever holds binary powers 2^-e doubled up to 1, so
        # every float below is exact and the 1.0 comparisons are reliable.
        elif self.phase_counter >= self.phase_length and self.probability < 1.0:  # repro: disable=DET004
            self.probability = min(1.0, self.probability * 2)  # repro: disable=DET004
            self.phase_counter = 0
        if self.probability < 1.0:  # repro: disable=DET004
            # Once p reaches 1 the counter is frozen: it is only ever read
            # under ``probability < 1.0`` and the next maximum drop resets it,
            # so letting it grow unboundedly was pure bookkeeping waste.
            self.phase_counter += 1
        return self.probability


class PathLabelKernel:
    """Array-native Claim 5.8 scoring for the 3-ECSS augmentation loop.

    Args:
        graph: The 3-edge-connected input graph ``G``.
        lca: The :class:`LCAIndex` over the BFS tree ``T`` (the same index the
            driver hands to :func:`repro.cycle_space.labels.compute_labels`).
        skip: Edges excluded from candidacy (the 2-ECSS subgraph ``H``).

    Attributes:
        cand_edges: Candidate id -> canonical edge (``graph.edges()`` order,
            the order the historical implementation iterated in).
        cand_repr: Candidate id -> ``repr`` string (the tie-break/sort key).
        in_added: Bytearray flag per candidate (set by the driver as edges
            join ``A``; flagged candidates are skipped by the scorer).

    Tree edges are identified by the integer id of their child vertex in the
    LCA index, so :meth:`score_round` never touches a hashable edge object
    inside the per-candidate loop.
    """

    __slots__ = (
        "lca", "cand_edges", "cand_repr", "in_added",
        "path_indptr", "path_child", "n_vertices", "_touched",
    )

    def __init__(self, graph: nx.Graph, lca: LCAIndex, skip: Iterable[Edge]) -> None:
        self.lca = lca
        skip_set = set(skip)
        index_of, paths = lca.index, lca.paths
        cand_edges: list[Edge] = []
        path_indptr = [0]
        path_child: list[int] = []
        longest = 0
        for u, v in graph.edges():
            edge = canonical_edge(u, v)
            if edge in skip_set:
                continue
            cand_edges.append(edge)
            path_child.extend(paths.path_edges(index_of[u], index_of[v]))
            longest = max(longest, len(path_child) - path_indptr[-1])
            path_indptr.append(len(path_child))
        self.cand_edges = cand_edges
        self.cand_repr = [repr(edge) for edge in cand_edges]
        self.in_added = bytearray(len(cand_edges))
        self.path_indptr = path_indptr
        self.path_child = path_child
        self.n_vertices = len(lca.nodes)
        self._touched = [0] * max(1, longest)

    @property
    def m_candidates(self) -> int:
        """Number of candidate edges (edges of ``G`` outside ``H``)."""
        return len(self.cand_edges)

    def path_indices(self, j: int) -> list[int]:
        """Child-vertex ids of the tree edges on the path of candidate *j*."""
        return self.path_child[self.path_indptr[j]:self.path_indptr[j + 1]]

    def mark_added(self, ids: Iterable[int]) -> None:
        """Flag candidates that joined ``A`` (skipped by future rounds)."""
        for j in ids:
            self.in_added[j] = 1

    def score_round(
        self, labels: Mapping[Edge, object]
    ) -> tuple[int, list[int], list[int], int]:
        """Score one iteration under the labelling ``phi``.

        Args:
            labels: The full label map of ``H ∪ A`` (tree and non-tree edges)
                as produced by ``compute_labels``; values may be any hashable
                label (random ints or exact covering frozensets).

        Returns:
            ``(tree_in_pairs, cand_ids, values, max_value)`` where
            *tree_in_pairs* is the number of tree edges sharing their label
            with another edge (the Claim 5.10 termination count), *cand_ids*
            and *values* list the candidates with positive Claim 5.8
            cost-effectiveness, and *max_value* is the largest such value
            (0 when there is none).  When *tree_in_pairs* is 0 the candidate
            scan is skipped entirely.
        """
        # Dense ids for this round's labels; totals[i] is n_phi of label i.
        ids: dict = {}
        totals: list[int] = []
        for label in labels.values():
            lid = ids.get(label)
            if lid is None:
                ids[label] = len(totals)
                totals.append(1)
            else:
                totals[lid] += 1

        # Tree-edge labels as one flat array over child-vertex ids, counting
        # the Claim 5.10 termination condition on the way.
        tlabel = [0] * self.n_vertices
        tree_in_pairs = 0
        for vid, edge in enumerate(self.lca.parent_edges):
            if edge is None:
                continue
            lid = ids[labels[edge]]
            tlabel[vid] = lid
            if totals[lid] > 1:
                tree_in_pairs += 1
        if tree_in_pairs == 0:
            return 0, [], [], 0

        # Claim 5.8 per candidate: sum over the distinct labels on its path of
        # n_{phi,e} * (n_phi - n_{phi,e}), with per-candidate label counts on
        # round-stamped arrays (stamped by candidate id, so nothing is reset).
        n_labels = len(totals)
        stamp = [-1] * n_labels
        count = [0] * n_labels
        touched = self._touched
        path_indptr, path_child = self.path_indptr, self.path_child
        in_added = self.in_added
        cand_ids: list[int] = []
        values: list[int] = []
        max_value = 0
        for j in range(len(self.cand_edges)):
            if in_added[j]:
                continue
            touched_n = 0
            for s in range(path_indptr[j], path_indptr[j + 1]):
                lid = tlabel[path_child[s]]
                if stamp[lid] != j:
                    stamp[lid] = j
                    count[lid] = 1
                    touched[touched_n] = lid
                    touched_n += 1
                else:
                    count[lid] += 1
            value = 0
            for i in range(touched_n):
                lid = touched[i]
                c = count[lid]
                value += c * (totals[lid] - c)
            if value > 0:
                cand_ids.append(j)
                values.append(value)
                if value > max_value:
                    max_value = value
        return tree_in_pairs, cand_ids, values, max_value


class BitsetCoverKernel:
    """Packed-bitmask cut coverage for one ``Aug_k`` level (Section 4).

    Args:
        cand_edges: Candidate edges outside ``H`` (``graph.edges()`` order).
        weights: Per-candidate integer weight.
        covers: Per-candidate iterable of covered cut indices (ascending).
        n_cuts: Total number of cuts of size ``k - 1``.

    Attributes:
        live: Candidate id -> current ``|C_e|`` (covered *and still
            uncovered* cuts), maintained incrementally by :meth:`add_many`.
        uncovered_mask: Bitmask of still-uncovered cut indices.
        masks: Candidate id -> bitmask of all cuts the edge covers.
        in_added: Bytearray flag per candidate already in ``A``.
    """

    __slots__ = (
        "cand_edges", "cand_repr", "weights", "masks", "live",
        "cut_indptr", "cut_cover", "uncovered_mask", "uncovered_count",
        "n_cuts", "in_added",
    )

    def __init__(
        self,
        cand_edges: Sequence[Edge],
        weights: Sequence[int],
        covers: Sequence[Iterable[int]],
        n_cuts: int,
    ) -> None:
        self.cand_edges = list(cand_edges)
        self.cand_repr = [repr(edge) for edge in self.cand_edges]
        self.weights = list(weights)
        self.n_cuts = n_cuts
        counts = [0] * n_cuts
        masks: list[int] = []
        live: list[int] = []
        cover_lists: list[list[int]] = []
        for cover in covers:
            indices = list(cover)
            mask = 0
            for c in indices:
                mask |= 1 << c
                counts[c] += 1
            masks.append(mask)
            live.append(len(indices))
            cover_lists.append(indices)
        if len(masks) != len(self.cand_edges) or len(self.weights) != len(masks):
            raise ValueError("cand_edges, weights and covers must align")
        self.masks = masks
        self.live = live

        # CSR transpose: cut id -> the candidate ids covering it.
        cut_indptr = [0] * (n_cuts + 1)
        for c in range(n_cuts):
            cut_indptr[c + 1] = cut_indptr[c] + counts[c]
        cursor = cut_indptr[:-1].copy()
        cut_cover = [0] * sum(counts)
        for j, indices in enumerate(cover_lists):
            for c in indices:
                cut_cover[cursor[c]] = j
                cursor[c] += 1
        self.cut_indptr = cut_indptr
        self.cut_cover = cut_cover

        self.uncovered_mask = (1 << n_cuts) - 1
        self.uncovered_count = n_cuts
        self.in_added = bytearray(len(self.cand_edges))

    @property
    def all_covered(self) -> bool:
        return self.uncovered_mask == 0

    def covers_of(self, j: int) -> list[int]:
        """Cut indices candidate *j* covers (from the packed mask)."""
        mask = self.masks[j]
        indices: list[int] = []
        while mask:
            low = mask & -mask
            indices.append(low.bit_length() - 1)
            mask ^= low
        return indices

    def add_many(self, ids: Iterable[int]) -> int:
        """Add candidates to ``A``; return how many cuts they newly covered.

        Every newly covered cut decrements the live counter of each edge
        covering it exactly once -- O(changed) total work, replacing the
        O(|E| * |cuts|) recompute of the historical implementation.
        """
        newly = 0
        for j in ids:
            self.in_added[j] = 1
            newly |= self.masks[j]
        newly &= self.uncovered_mask
        if not newly:
            return 0
        self.uncovered_mask &= ~newly
        live = self.live
        cut_indptr, cut_cover = self.cut_indptr, self.cut_cover
        flipped = 0
        while newly:
            low = newly & -newly
            c = low.bit_length() - 1
            newly ^= low
            flipped += 1
            for s in range(cut_indptr[c], cut_indptr[c + 1]):
                live[cut_cover[s]] -= 1
        self.uncovered_count -= flipped
        return flipped

    def score(self) -> tuple[list[int], list[object], object]:
        """Rounded cost-effectiveness of every live candidate outside ``A``.

        Returns ``(cand_ids, exponents, maximum)``: integer exponents ``e``
        (``rho~ = 2^e``), :data:`INFINITE_EFFECTIVENESS` for zero-weight
        edges, and the maximum (``None`` when no candidate is live).  One
        flat scan of the incrementally maintained counters.
        """
        cand_ids: list[int] = []
        exponents: list[object] = []
        maximum: object = None
        live, weights, in_added = self.live, self.weights, self.in_added
        for j in range(len(live)):
            if in_added[j]:
                continue
            uncovered = live[j]
            if uncovered == 0:
                continue
            weight = weights[j]
            if weight == 0:
                exponent: object = INFINITE_EFFECTIVENESS
            else:
                exponent = rounded_exponent(uncovered, weight)
            cand_ids.append(j)
            exponents.append(exponent)
            if maximum is None or exponent > maximum:
                maximum = exponent
        return cand_ids, exponents, maximum
