"""The augmentation framework of Section 2 (Claim 2.1).

``Aug_k`` takes a k-edge-connected graph ``G`` and a (k-1)-edge-connected
spanning subgraph ``H`` and asks for a minimum-weight edge set ``A`` such that
``H ∪ A`` is k-edge-connected.  Claim 2.1 composes approximation algorithms
for ``Aug_1 .. Aug_k`` into a k-ECSS algorithm whose approximation ratio is
the sum of the per-stage ratios and whose round complexity is the sum of the
per-stage round complexities; :func:`compose_augmentations` is that
composition, parameterised by the per-stage solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

import networkx as nx

from repro.congest.metrics import RoundLedger
from repro.graphs.connectivity import canonical_edge, edge_set, subgraph_weight

Edge = tuple[Hashable, Hashable]

__all__ = ["AugmentationResult", "AugSolver", "compose_augmentations", "build_subgraph"]


@dataclass
class AugmentationResult:
    """Result of one ``Aug_i`` stage.

    Attributes:
        added: The edges added to the augmentation (disjoint from ``H``).
        weight: Their total weight.
        iterations: Covering iterations used by the stage.
        ledger: Round charges of the stage.
        metadata: Stage-specific diagnostics.
    """

    added: frozenset[Edge]
    weight: int
    iterations: int
    ledger: RoundLedger
    metadata: dict = field(default_factory=dict)


# A solver for Aug_i: (graph, current subgraph edges, target connectivity i) -> result.
AugSolver = Callable[[nx.Graph, frozenset[Edge], int], AugmentationResult]


def build_subgraph(graph: nx.Graph, edges: Iterable[Edge]) -> nx.Graph:
    """Return the spanning subgraph of *graph* induced by *edges* (weights copied)."""
    subgraph = nx.Graph()
    subgraph.add_nodes_from(graph.nodes())
    for u, v in edges:
        subgraph.add_edge(u, v, weight=graph[u][v].get("weight", 1))
    return subgraph


def compose_augmentations(
    graph: nx.Graph,
    k: int,
    solvers: dict[int, AugSolver],
) -> tuple[frozenset[Edge], int, RoundLedger, list[AugmentationResult]]:
    """Compose per-level augmentation solvers into a k-ECSS (Claim 2.1).

    Args:
        graph: The k-edge-connected input graph.
        k: Target connectivity.
        solvers: Map from level ``i`` (1..k) to the solver used to raise the
            connectivity from ``i - 1`` to ``i``.  Every level must be present.

    Returns:
        ``(edges, iterations, ledger, stage_results)`` where *edges* is the
        union of all stages (k-edge-connected by construction).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    missing = [i for i in range(1, k + 1) if i not in solvers]
    if missing:
        raise ValueError(f"missing Aug solvers for levels {missing}")

    current: frozenset[Edge] = frozenset()
    ledger = RoundLedger()
    stages: list[AugmentationResult] = []
    iterations = 0
    for level in range(1, k + 1):
        stage = solvers[level](graph, current, level)
        overlap = stage.added & current
        if overlap:
            raise RuntimeError(
                f"Aug_{level} returned {len(overlap)} edges already present in H"
            )
        current = frozenset(current | stage.added)
        ledger.extend(stage.ledger)
        ledger.add(
            f"aug-{level}-compose",
            0,
            note=f"level {level}: +{len(stage.added)} edges, weight {stage.weight}",
        )
        stages.append(stage)
        iterations += stage.iterations
    return current, iterations, ledger, stages


def augmentation_from_edges(
    graph: nx.Graph,
    added: Iterable[Edge],
    ledger: RoundLedger | None = None,
    iterations: int = 0,
    metadata: dict | None = None,
) -> AugmentationResult:
    """Convenience constructor canonicalising edges and recomputing the weight."""
    canonical = edge_set(canonical_edge(u, v) for u, v in added)
    return AugmentationResult(
        added=canonical,
        weight=subgraph_weight(graph, canonical),
        iterations=iterations,
        ledger=ledger if ledger is not None else RoundLedger(),
        metadata=metadata or {},
    )
