"""Cost-effectiveness bookkeeping (Section 2.1).

The cost-effectiveness of a candidate edge ``e`` is ``rho(e) = |C_e| / w(e)``,
the number of still-uncovered cuts it covers per unit of weight; candidates
are compared by their *rounded* cost-effectiveness ``rho~(e)``, the smallest
power of two strictly greater than ``rho(e)``.  Zero-weight edges have
infinite cost-effectiveness (the algorithms add them up-front).

Exact fractions are used throughout so that ties and maxima are deterministic
and independent of floating point rounding.
"""

from __future__ import annotations

from fractions import Fraction

__all__ = [
    "INFINITE_EFFECTIVENESS",
    "cost_effectiveness",
    "round_up_to_power_of_two",
    "rounded_cost_effectiveness",
]


class _Infinity:
    """Sentinel comparing greater than every fraction (the rho of zero-weight edges)."""

    def __gt__(self, other) -> bool:
        return not isinstance(other, _Infinity)

    def __lt__(self, other) -> bool:
        return False

    def __ge__(self, other) -> bool:
        return True

    def __le__(self, other) -> bool:
        return isinstance(other, _Infinity)

    def __eq__(self, other) -> bool:
        return isinstance(other, _Infinity)

    def __hash__(self) -> int:
        return hash("INFINITE_EFFECTIVENESS")

    def __repr__(self) -> str:
        return "INFINITE_EFFECTIVENESS"


INFINITE_EFFECTIVENESS = _Infinity()


def cost_effectiveness(uncovered: int, weight: int) -> Fraction | _Infinity:
    """Return ``rho = uncovered / weight`` (infinite when ``weight == 0``)."""
    if uncovered < 0:
        raise ValueError("the number of uncovered cuts cannot be negative")
    if weight < 0:
        raise ValueError("edge weights must be non-negative")
    if weight == 0:
        return INFINITE_EFFECTIVENESS
    return Fraction(uncovered, weight)


def round_up_to_power_of_two(value: Fraction) -> Fraction:
    """Return the smallest power of two strictly greater than *value* (> 0).

    The paper rounds ``rho`` "to the closest power of 2 that is greater than
    rho", so for every candidate ``rho~ / 2 <= rho < rho~`` -- the property the
    approximation analysis (Lemma 3.6) uses.
    """
    if value <= 0:
        raise ValueError("can only round positive values")
    power = Fraction(1)
    if value >= 1:
        while power <= value:
            power *= 2
        return power
    while power / 2 > value:
        power /= 2
    return power


def rounded_cost_effectiveness(uncovered: int, weight: int) -> Fraction | _Infinity:
    """Return ``rho~`` for an edge covering *uncovered* cuts at cost *weight*."""
    rho = cost_effectiveness(uncovered, weight)
    if rho is INFINITE_EFFECTIVENESS:
        return rho
    if rho == 0:
        return Fraction(0)
    return round_up_to_power_of_two(rho)
