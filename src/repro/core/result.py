"""The result object returned by every k-ECSS solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.congest.metrics import RoundLedger
from repro.graphs.connectivity import edge_set, subgraph_weight, verify_spanning_subgraph

Edge = tuple[Hashable, Hashable]

__all__ = ["ECSSResult"]


@dataclass
class ECSSResult:
    """A k-edge-connected spanning subgraph together with its cost accounting.

    Attributes:
        k: The connectivity requirement that was solved for.
        graph: The input graph.
        edges: The selected edges (canonical form).
        weight: Total weight of the selected edges.
        ledger: Round charges for the distributed execution.
        iterations: Total number of covering iterations across all stages.
        algorithm: Name of the algorithm that produced the result.
        metadata: Free-form per-algorithm diagnostics (stage breakdowns,
            iteration histories, approximation references, ...).
    """

    k: int
    graph: nx.Graph
    edges: frozenset[Edge]
    weight: int
    ledger: RoundLedger
    iterations: int
    algorithm: str
    metadata: dict = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Total (simulated + modelled) CONGEST rounds."""
        return self.ledger.total_rounds

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def subgraph(self) -> nx.Graph:
        """Materialise the selected subgraph (with weights) as a ``networkx.Graph``."""
        result = nx.Graph()
        result.add_nodes_from(self.graph.nodes())
        for u, v in self.edges:
            result.add_edge(u, v, weight=self.graph[u][v].get("weight", 1))
        return result

    def verify(self) -> tuple[bool, str]:
        """Re-check that the selected edges form a k-edge-connected spanning subgraph."""
        return verify_spanning_subgraph(self.graph, self.edges, self.k)

    def approximation_ratio(self, reference_weight: int) -> float:
        """Return ``weight / reference_weight`` against a baseline or lower bound."""
        if reference_weight <= 0:
            raise ValueError("reference weight must be positive")
        return self.weight / reference_weight

    @staticmethod
    def from_edges(
        k: int,
        graph: nx.Graph,
        edges,
        ledger: RoundLedger,
        iterations: int,
        algorithm: str,
        metadata: dict | None = None,
    ) -> "ECSSResult":
        """Build a result, canonicalising edges and recomputing the weight."""
        canonical = edge_set(edges)
        return ECSSResult(
            k=k,
            graph=graph,
            edges=canonical,
            weight=subgraph_weight(graph, canonical),
            ledger=ledger,
            iterations=iterations,
            algorithm=algorithm,
            metadata=metadata or {},
        )
