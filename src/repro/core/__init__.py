"""The paper's headline algorithms.

* :mod:`repro.core.two_ecss` -- Theorem 1.1: weighted 2-ECSS via MST +
  distributed weighted TAP, O(log n)-approximation in O((D + sqrt n) log^2 n)
  rounds.
* :mod:`repro.core.k_ecss` -- Theorem 1.2: weighted k-ECSS via iterated
  augmentation ``Aug_i``, O(k log n)-approximation (expected) in
  O(k (D log^3 n + n)) rounds.
* :mod:`repro.core.three_ecss` -- Theorem 1.3: unweighted 3-ECSS via cycle
  space sampling, O(log n)-approximation (expected) in O(D log^3 n) rounds.
* :mod:`repro.core.augmentation` -- the Aug_k framework and the composition of
  Claim 2.1.
* :mod:`repro.core.cost_effectiveness` -- exact (fraction-valued) cost
  effectiveness and the power-of-two rounding used for candidate selection.
* :mod:`repro.core.fastaug` -- the flat-array kernels behind the solver inner
  loops (CSR path-label scoring, bitset cut coverage, the guessing schedule).
* :mod:`repro.core.result` -- the :class:`~repro.core.result.ECSSResult`
  returned by every solver.
"""

from repro.core.result import ECSSResult
from repro.core.cost_effectiveness import (
    INFINITE_EFFECTIVENESS,
    cost_effectiveness,
    rounded_cost_effectiveness,
    round_up_to_power_of_two,
)
from repro.core.augmentation import AugmentationResult, compose_augmentations
from repro.core.fastaug import BitsetCoverKernel, GuessingSchedule, PathLabelKernel
from repro.core.two_ecss import two_ecss, weighted_tap
from repro.core.k_ecss import k_ecss, k_ecss_nx, augment_to_k, augment_to_k_nx
from repro.core.three_ecss import three_ecss, three_ecss_nx, unweighted_two_ecss_2approx

__all__ = [
    "ECSSResult",
    "INFINITE_EFFECTIVENESS",
    "cost_effectiveness",
    "rounded_cost_effectiveness",
    "round_up_to_power_of_two",
    "AugmentationResult",
    "compose_augmentations",
    "two_ecss",
    "weighted_tap",
    "BitsetCoverKernel",
    "GuessingSchedule",
    "PathLabelKernel",
    "k_ecss",
    "k_ecss_nx",
    "augment_to_k",
    "augment_to_k_nx",
    "three_ecss",
    "three_ecss_nx",
    "unweighted_two_ecss_2approx",
]
