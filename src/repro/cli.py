"""Command line interface: ``kecss solve | verify | experiment | bench | cache |
families | history | regress | store | worker | lint | trace``.

Examples::

    kecss solve --family weighted-sparse --n 32 --k 2 --seed 1
    kecss experiment e3
    kecss experiment e1 --backend cluster --trace trace.jsonl
    kecss trace trace.jsonl                          # timing/utilization report
    kecss trace trace.jsonl --format chrome --out trace.chrome.json
    kecss experiment e1 --workers 4 --backend threads --cache-dir .repro-cache
    kecss experiment e1 --workers 4 --backend cluster  # loopback work queue
    kecss worker --connect 10.0.0.5:7781             # serve a remote engine
    kecss bench e2 --out BENCH_e2.json
    kecss bench all --out-dir baselines --workers 4
    kecss bench e6 --against BENCH_e6.json
    kecss bench e3 --store-dir .repro-store          # record + append to the store
    kecss store import BENCH_e3.json BENCH_e9.json --store-dir .repro-store
    kecss store ls --store-dir .repro-store
    kecss store fsck --repair --store-dir .repro-store   # quarantine crash damage
    kecss store gc --keep-last 5 --store-dir .repro-store
    kecss history e3 --store-dir .repro-store
    kecss history e3 --metric ratio --by family      # per-configuration drill-down
    kecss regress e3 --store-dir .repro-store --tolerance 0.0
    kecss cache stats --cache-dir .repro-cache
    kecss cache gc --cache-dir .repro-cache
    kecss families
    kecss lint                                       # determinism & cache-soundness checks
    kecss lint --format json --select CACHE001
    kecss lint --list-rules

The ``experiment`` subcommand runs through the parallel cached
:class:`~repro.analysis.engine.ExperimentEngine`: ``--workers N`` fans trials
out over N workers on the execution backend picked with ``--backend``
(``serial`` | ``threads`` | ``processes`` | ``cluster``; aggregates are
bit-identical on every backend), ``--cache-dir`` persists per-trial results
so re-runs and partially failed sweeps resume from disk, and ``--no-cache``
forces recomputation.  The ``cluster`` backend spawns loopback worker
processes by default; with ``REPRO_CLUSTER_LISTEN=HOST:PORT`` set it serves
external ``kecss worker --connect HOST:PORT`` processes instead -- on this
machine or others (see ``docs/distributed.md``).  ``--heartbeat-timeout``
(or ``$REPRO_CLUSTER_HEARTBEAT``) tunes how long a silent worker keeps its
leases before they requeue; ``--backend failover`` degrades
``cluster -> processes -> serial`` instead of failing the sweep, recording
every fallback into provenance (see ``docs/robustness.md``).

The ``bench`` subcommand runs the same experiment entrypoints through the
engine and persists machine-readable ``BENCH_<experiment>.json`` baselines
(per-trial durations, metrics, aggregate tables, engine/cache provenance) so
future changes can be diffed against a recorded perf trajectory instead of
claimed speedups: ``--dry-run`` prints the JSON without writing, ``--against
PATH`` re-runs the experiment and fails when its aggregates drift from the
stored baseline.

The ``cache`` subcommand manages that on-disk trial cache: ``stats`` prints
per-experiment entry/stale/byte counts, ``gc`` evicts entries whose stored
code version no longer matches the one derived from the solver-module
content hashes (i.e. results computed by since-edited code), and ``clear``
removes every entry.

The result-store verbs sit on :mod:`repro.store` (append-only columnar run
segments; see ``benchmarks/README.md``): ``bench``/``experiment`` append
their per-trial records to the store named by ``--store-dir`` (default:
``$REPRO_STORE_DIR``), ``store import`` migrates committed
``BENCH_*.json`` baselines, ``store ls`` lists stored runs, ``history``
tabulates per-code-version aggregate trends, and ``regress`` compares the
latest stored run against the previous code version and exits non-zero on
drift beyond ``--tolerance`` -- the cross-run superset of ``bench
--against``.  ``store fsck [--repair]`` detects crashed-writer residue
(half-written segments, truncated columns, stray tmp files; exit 1 when
anything is found) and quarantines it under ``<store>/quarantine/``;
``store gc --keep-last N`` is per-experiment retention.  See
``docs/robustness.md`` for the fault model behind both.

The ``lint`` subcommand runs the :mod:`repro.lint` static analyzer over the
package sources: the DET00x determinism rules and the CACHE001
cache-soundness rule (``register_trial(modules=...)`` declarations must
cover the trial's transitive import closure).  Exit codes follow the
``regress`` convention: 0 clean, 1 new findings, 2 usage error.  See
``docs/lint.md``.

Observability (see ``docs/observability.md``): ``--trace FILE`` on
``experiment``/``bench`` records a JSONL structured trace of the run
(engine batches, per-trial queue-wait vs compute, cluster leases/steals/
requeues, store segment writes) without perturbing any result -- tracing
observes, never participates.  ``kecss trace FILE`` renders the recorded
trace as a per-stage timing breakdown and per-worker utilization table
(``--format json`` for machines, ``--format chrome`` for Perfetto /
``chrome://tracing``).  The global ``--log-level`` flag (or
``$REPRO_LOG_LEVEL``) turns on stdlib-logging diagnostics under the
``repro.*`` namespace.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analysis import experiments as experiment_module
from repro.analysis.backends import available_backends
from repro.analysis.engine import (
    ExperimentEngine,
    cache_clear,
    cache_gc,
    cache_stats,
)
from repro.analysis.tables import Table
from repro.core.k_ecss import k_ecss
from repro.core.three_ecss import three_ecss
from repro.core.two_ecss import two_ecss
from repro.graphs.generators import FAMILIES, make_family

__all__ = ["main", "build_parser"]

_EXPERIMENTS = experiment_module.EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="kecss",
        description="Distributed approximation of minimum k-ECSS (Dory, PODC 2018) - reproduction",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="diagnostics level for the repro.* loggers (DEBUG, INFO, "
             "WARNING, ERROR; default: $REPRO_LOG_LEVEL, then WARNING)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run a solver on a generated instance")
    solve.add_argument("--family", default="weighted-sparse", choices=sorted(FAMILIES))
    solve.add_argument("--n", type=int, default=32, help="approximate number of vertices")
    solve.add_argument("--k", type=int, default=2, help="target edge connectivity")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--algorithm",
        choices=["auto", "2ecss", "kecss", "3ecss"],
        default="auto",
        help="auto picks 2ecss for k=2, 3ecss for unweighted k=3, kecss otherwise",
    )
    solve.add_argument("--json", action="store_true", help="print machine-readable output")

    verify = subparsers.add_parser("verify", help="verify an edge list against an instance")
    verify.add_argument("--family", default="weighted-sparse", choices=sorted(FAMILIES))
    verify.add_argument("--n", type=int, default=32)
    verify.add_argument("--k", type=int, default=2)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "edges", help="JSON list of [u, v] pairs, or '-' to read it from stdin"
    )

    experiment = subparsers.add_parser("experiment", help="run one of the E1..E10 experiments")
    experiment.add_argument("positional_id", nargs="?", default=None, metavar="id",
                            choices=["all", *sorted(_EXPERIMENTS)],
                            help="experiment id (same as --id; defaults to 'all')")
    experiment.add_argument("--id", dest="experiment_id", default=None,
                            choices=["all", *sorted(_EXPERIMENTS)])
    experiment.add_argument("--markdown", action="store_true", help="emit Markdown tables")
    experiment.add_argument("--workers", type=int, default=1,
                            help="worker count for trial fan-out (default: 1, serial)")
    experiment.add_argument("--backend", default=None, choices=available_backends(),
                            help="execution backend (default: serial for 1 worker, "
                                 "processes otherwise)")
    experiment.add_argument("--cache-dir", default=None,
                            help="directory for the on-disk trial cache (default: caching off)")
    experiment.add_argument("--no-cache", action="store_true",
                            help="ignore the cache even when --cache-dir is set")
    experiment.add_argument("--heartbeat-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="cluster backend: seconds of worker silence "
                                 "before its leases requeue (> 0; default: "
                                 "$REPRO_CLUSTER_HEARTBEAT, then 10)")
    experiment.add_argument("--store-dir", default=None,
                            help="append per-trial records to this columnar trial "
                                 "store (default: $REPRO_STORE_DIR; unset: no store)")
    experiment.add_argument("--trace", default=None, metavar="FILE",
                            help="record a JSONL structured trace of the run "
                                 "(summarize with 'kecss trace FILE'); results "
                                 "stay bit-identical")

    bench = subparsers.add_parser(
        "bench", help="run benchmark entrypoints and persist BENCH_*.json baselines"
    )
    bench.add_argument("experiment_id", metavar="id",
                       choices=["all", *sorted(_EXPERIMENTS)],
                       help="experiment id, or 'all' for every experiment")
    bench.add_argument("--out", default=None,
                       help="output path (default: BENCH_<id>.json; single id only)")
    bench.add_argument("--out-dir", default=".",
                       help="directory for the BENCH_<id>.json files (default: cwd)")
    bench.add_argument("--dry-run", action="store_true",
                       help="print the baseline JSON to stdout without writing files")
    bench.add_argument("--against", default=None, metavar="PATH",
                       help="compare the fresh aggregates against a stored baseline "
                            "and exit non-zero on drift (single id only)")
    bench.add_argument("--workers", type=int, default=1,
                       help="worker count for trial fan-out (default: 1, serial)")
    bench.add_argument("--backend", default=None, choices=available_backends(),
                       help="execution backend (default: serial for 1 worker, "
                            "processes otherwise)")
    bench.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk trial cache (default: caching off)")
    bench.add_argument("--no-cache", action="store_true",
                       help="ignore the cache even when --cache-dir is set")
    bench.add_argument("--heartbeat-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="cluster backend: seconds of worker silence "
                            "before its leases requeue (> 0; default: "
                            "$REPRO_CLUSTER_HEARTBEAT, then 10)")
    bench.add_argument("--store-dir", default=None,
                       help="also append the run to this columnar trial store "
                            "(default: $REPRO_STORE_DIR; skipped under --dry-run)")
    bench.add_argument("--trace", default=None, metavar="FILE",
                       help="record a JSONL structured trace of the run "
                            "(summarize with 'kecss trace FILE'); results "
                            "stay bit-identical")

    history = subparsers.add_parser(
        "history",
        help="tabulate per-code-version aggregate trends from the trial store",
    )
    history.add_argument("experiment_id", metavar="id",
                         help="experiment whose stored runs to tabulate")
    history.add_argument("--store-dir", default=None,
                         help="the trial store to read (default: $REPRO_STORE_DIR)")
    history.add_argument("--markdown", action="store_true",
                         help="emit a Markdown table")
    history.add_argument("--metric", default=None, metavar="NAME",
                         help="drill into one metric (count/mean/min/max per "
                              "code version) instead of the pooled trend")
    history.add_argument("--by", default=None, metavar="KEY",
                         help="group the --metric drill-down by a per-trial "
                              "column: a config key like 'family', or a bare "
                              "column like 'worker' or 'seed'")

    regress = subparsers.add_parser(
        "regress",
        help="compare the latest stored run against the previous code version "
             "and exit non-zero on drift",
    )
    regress.add_argument("experiment_id", metavar="id",
                         help="experiment whose stored runs to compare")
    regress.add_argument("--store-dir", default=None,
                         help="the trial store to read (default: $REPRO_STORE_DIR)")
    regress.add_argument("--tolerance", type=float, default=0.0,
                         help="relative drift allowed on table cells and metric "
                              "means (default: 0.0, bit-identical)")
    regress.add_argument("--duration-tolerance", type=float, default=None,
                         help="relative drift allowed on the mean trial duration "
                              "(default: report durations but never fail on them)")

    store = subparsers.add_parser(
        "store", help="manage the columnar trial store"
    )
    store.add_argument("action", choices=["import", "ls", "fsck", "gc"],
                       help="import: ingest BENCH_*.json baselines; "
                            "ls: list stored runs; "
                            "fsck: check segments for crash damage "
                            "(exit 1 when any is found); "
                            "gc: per-experiment retention")
    store.add_argument("paths", nargs="*",
                       help="baseline files to import (import only)")
    store.add_argument("--store-dir", default=None,
                       help="the trial store to operate on "
                            "(default: $REPRO_STORE_DIR)")
    store.add_argument("--repair", action="store_true",
                       help="fsck only: quarantine damaged segments under "
                            "<store>/quarantine/ and unlink stray tmp files")
    store.add_argument("--keep-last", type=int, default=None, metavar="N",
                       help="gc only: keep the newest N runs per experiment "
                            "and delete the rest (N >= 1)")

    worker = subparsers.add_parser(
        "worker",
        help="serve a cluster coordinator: lease trial chunks, compute, "
             "stream results back (see docs/distributed.md)",
        description="Serve a cluster coordinator: lease trial chunks, "
                    "compute, stream results back.  Registration is "
                    "authenticated: export REPRO_CLUSTER_SECRET with the "
                    "same value the coordinator was started with.",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator to register with (the engine "
                             "process running with REPRO_CLUSTER_LISTEN set)")
    worker.add_argument("--name", default=None,
                        help="worker name recorded as per-trial provenance "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--capacity", type=int, default=1,
                        help="advertised worker slots, weighing chunk "
                             "planning toward bigger leases (default: 1)")
    worker.add_argument("--connect-timeout", type=float, default=30.0,
                        help="seconds to keep retrying the initial connect "
                             "(default: 30; workers may start first)")

    cache = subparsers.add_parser(
        "cache", help="inspect or clean the on-disk trial cache"
    )
    cache.add_argument("action", choices=["stats", "gc", "clear"],
                       help="stats: per-experiment counts; gc: evict entries with "
                            "stale code versions; clear: remove everything")
    cache.add_argument("--cache-dir", required=True,
                       help="the trial-cache directory to operate on")

    subparsers.add_parser("families", help="list the registered graph families")

    trace = subparsers.add_parser(
        "trace",
        help="summarize a JSONL trace recorded with --trace: per-stage "
             "timing, per-worker utilization, event log",
    )
    trace.add_argument("path", metavar="FILE",
                       help="the trace file a --trace run wrote")
    trace.add_argument("--format", dest="output_format", default="text",
                       choices=["text", "json", "chrome"],
                       help="text: timing/utilization tables; json: the full "
                            "summary (what the CI gate parses); chrome: "
                            "Chrome trace-event JSON for Perfetto / "
                            "chrome://tracing")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write the rendering to PATH instead of stdout")

    lint = subparsers.add_parser(
        "lint",
        help="run the determinism & cache-soundness static analyzer",
    )
    lint.add_argument("--root", default=None, metavar="PATH",
                      help="repository root holding src/repro (default: the "
                           "checkout this package was imported from)")
    lint.add_argument("--format", dest="output_format", default="text",
                      choices=["text", "json"],
                      help="report format (json is what the CI gate parses)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run "
                           "(default: every registered rule)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file of grandfathered findings "
                           "(default: <root>/lint-baseline.json when present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file: report every finding as new")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline file from the current findings "
                           "and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")
    return parser


def _solve(args: argparse.Namespace) -> int:
    family = make_family(args.family)
    graph = family(args.n, seed=args.seed)
    algorithm = args.algorithm
    if algorithm == "auto":
        if args.k == 2:
            algorithm = "2ecss"
        elif args.k == 3 and not family.weighted:
            algorithm = "3ecss"
        else:
            algorithm = "kecss"
    if algorithm == "2ecss":
        result = two_ecss(graph, seed=args.seed)
    elif algorithm == "3ecss":
        result = three_ecss(graph, seed=args.seed)
    else:
        result = k_ecss(graph, args.k, seed=args.seed)
    ok, reason = result.verify()
    if args.json:
        print(json.dumps({
            "algorithm": result.algorithm,
            "n": graph.number_of_nodes(),
            "m": graph.number_of_edges(),
            "k": result.k,
            "weight": result.weight,
            "edges": sorted([list(edge) for edge in result.edges]),
            "rounds": result.rounds,
            "iterations": result.iterations,
            "valid": ok,
        }))
    else:
        print(f"algorithm     : {result.algorithm}")
        print(f"instance      : {args.family}, n={graph.number_of_nodes()}, "
              f"m={graph.number_of_edges()}")
        print(f"k             : {result.k}")
        print(f"weight        : {result.weight}")
        print(f"edges         : {result.num_edges}")
        print(f"iterations    : {result.iterations}")
        print(f"verified      : {ok}{'' if ok else ' (' + reason + ')'}")
        print(result.ledger.summary())
    return 0 if ok else 1


def _verify(args: argparse.Namespace) -> int:
    family = make_family(args.family)
    graph = family(args.n, seed=args.seed)
    raw = sys.stdin.read() if args.edges == "-" else args.edges
    edges = [tuple(edge) for edge in json.loads(raw)]
    from repro.graphs.connectivity import verify_spanning_subgraph

    ok, reason = verify_spanning_subgraph(graph, edges, args.k)
    print("OK" if ok else f"INVALID: {reason}")
    return 0 if ok else 1


def _store_dir_from(args: argparse.Namespace, required: bool = False) -> Path | None:
    """Resolve ``--store-dir`` with the ``REPRO_STORE_DIR`` fallback."""
    value = args.store_dir or os.environ.get("REPRO_STORE_DIR")
    if value:
        return Path(value)
    if required:
        raise SystemExit(
            "no trial store configured: pass --store-dir or set REPRO_STORE_DIR"
        )
    return None


def _open_store(directory: Path, create: bool):
    from repro.store import StoreError, TrialStore

    try:
        return TrialStore(directory, create=create)
    except StoreError as exc:
        raise SystemExit(str(exc))


def _apply_obs_options(args: argparse.Namespace) -> None:
    """Enable tracing when ``--trace FILE`` was given.

    ``enable_tracing`` publishes ``$REPRO_TRACE`` so forked/spawned cluster
    workers inherit the sink; *truncate* starts each run on a fresh file
    instead of appending to a stale trace.
    """
    value = getattr(args, "trace", None)
    if value is None:
        return
    from repro.obs.trace import enable_tracing

    try:
        enable_tracing(value, truncate=True)
    except OSError as exc:
        raise SystemExit(f"cannot write trace file {value!r}: {exc}")


def _apply_cluster_options(args: argparse.Namespace) -> None:
    """Publish ``--heartbeat-timeout`` through the env fallback.

    The env var (rather than an engine kwarg) is the one channel that
    reaches every ``ClusterBackend`` construction site uniformly --
    including the cluster stage a ``failover`` chain resolves lazily.
    """
    value = getattr(args, "heartbeat_timeout", None)
    if value is None:
        return
    if not value > 0:  # rejects NaN too
        raise SystemExit(f"--heartbeat-timeout must be > 0, got {value!r}")
    from repro.analysis.cluster.backend import HEARTBEAT_ENV

    os.environ[HEARTBEAT_ENV] = str(value)


def _experiment(args: argparse.Namespace) -> int:
    if (
        args.positional_id is not None
        and args.experiment_id is not None
        and args.positional_id != args.experiment_id
    ):
        raise SystemExit(
            f"conflicting experiment ids: positional {args.positional_id!r} "
            f"vs --id {args.experiment_id!r}"
        )
    experiment_id = args.positional_id or args.experiment_id or "all"
    _apply_cluster_options(args)
    _apply_obs_options(args)
    if args.cache_dir is not None and not args.no_cache:
        try:
            Path(args.cache_dir).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"cannot create cache dir {args.cache_dir!r}: {exc}")
    store_dir = _store_dir_from(args)
    engine_kwargs = dict(
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    if store_dir is not None:
        # Record per-trial results and append one store run per experiment.
        from repro.analysis.bench import (
            RecordingEngine,
            engine_provenance,
            table_payload,
            trial_payload,
        )

        store = _open_store(store_dir, create=True)
        engine = RecordingEngine(**engine_kwargs)
    else:
        store = None
        engine = ExperimentEngine(**engine_kwargs)
    ids = list(_EXPERIMENTS) if experiment_id == "all" else [experiment_id]
    # Entering the engine keeps one backend alive (executor pool, cluster
    # workers) across every experiment instead of rebuilding it per batch.
    with engine:
        for eid in ids:
            start = len(getattr(engine, "recorded", ()))
            created = time.time()
            table = _EXPERIMENTS[eid](engine=engine)
            print(table.to_markdown() if args.markdown else table.to_text())
            print()
            if store is not None:
                info = store.ingest(
                    eid,
                    [trial_payload(j, r) for j, r in engine.recorded[start:]],
                    created_unix=created,
                    table=table_payload(table),
                    provenance=engine_provenance(engine, eid),
                    source="kecss experiment",
                )
                print(f"{eid}: stored {info.run_id} in {store_dir}", file=sys.stderr)
    print(engine.summary(), file=sys.stderr)
    return 0


def _bench(args: argparse.Namespace) -> int:
    from repro.analysis.bench import RecordingEngine

    _apply_cluster_options(args)
    _apply_obs_options(args)
    ids = sorted(_EXPERIMENTS) if args.experiment_id == "all" else [args.experiment_id]
    if args.out is not None and len(ids) != 1:
        raise SystemExit("--out requires a single experiment id (use --out-dir for 'all')")
    if args.against is not None and len(ids) != 1:
        raise SystemExit("--against requires a single experiment id")
    if args.against is not None and args.out is not None:
        raise SystemExit(
            "--against does not write baselines; drop --out (or record a new "
            "baseline first, then compare)"
        )
    if args.cache_dir is not None and not args.no_cache:
        try:
            Path(args.cache_dir).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"cannot create cache dir {args.cache_dir!r}: {exc}")
    engine = RecordingEngine(
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    store_dir = _store_dir_from(args)
    store = None
    if store_dir is not None and not args.dry_run:
        store = _open_store(store_dir, create=True)
    exit_code = 0
    # Entering the engine keeps one backend alive (executor pool, cluster
    # workers) across every benchmarked experiment.
    with engine:
        for experiment_id in ids:
            exit_code = max(
                exit_code, _bench_one(args, engine, experiment_id, store, store_dir)
            )
    print(engine.summary(), file=sys.stderr)
    return exit_code


def _bench_one(args, engine, experiment_id, store, store_dir) -> int:
    """Benchmark one experiment on an already-entered engine."""
    from repro.analysis.bench import (
        baseline_path,
        build_baseline,
        compare_tables,
        validate_baseline,
        write_baseline,
    )

    exit_code = 0
    payload = build_baseline(experiment_id, engine=engine)
    problems = validate_baseline(payload)
    if problems:
        raise SystemExit(
            f"internal error: {experiment_id} baseline failed its own schema "
            f"check: {'; '.join(problems)}"
        )
    if args.against is not None:
        try:
            stored = json.loads(Path(args.against).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.against!r}: {exc}")
        fresh = Table(
            title=payload["table"]["title"],
            columns=payload["table"]["columns"],
            rows=[tuple(row) for row in payload["table"]["rows"]],
        )
        mismatches = compare_tables(stored, fresh)
        if mismatches:
            exit_code = 1
            print(f"{experiment_id}: aggregates drifted from {args.against}:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"{experiment_id}: aggregates match {args.against}")
    if store is not None:
        from repro.store import StoreError, import_baseline

        try:
            info = import_baseline(store, payload, source="kecss bench")
        except StoreError as exc:
            raise SystemExit(str(exc))
        print(f"{experiment_id}: stored {info.run_id} in {store_dir}")
    if args.dry_run:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.against is None:
        path = Path(args.out) if args.out else baseline_path(
            experiment_id, args.out_dir
        )
        write_baseline(payload, path)
        summary = payload["summary"]
        print(
            f"{experiment_id}: wrote {path} "
            f"({summary['trial_count']} trials, "
            f"{summary['wall_seconds']:.3f}s wall, "
            f"{summary['cached_trials']} cached)"
        )
    return exit_code


def _cache(args: argparse.Namespace) -> int:
    cache_dir = Path(args.cache_dir)
    if not cache_dir.is_dir():
        print(f"no cache directory at {cache_dir}")
        return 0
    if args.action == "stats":
        stats = cache_stats(cache_dir)
        if not stats:
            print(f"cache at {cache_dir} is empty")
            return 0
        table = Table(
            title=f"trial cache at {cache_dir}",
            columns=["experiment", "entries", "stale", "tmp", "bytes"],
        )
        for experiment in sorted(stats):
            bucket = stats[experiment]
            table.add_row(
                experiment, bucket["entries"], bucket["stale"], bucket["tmp"],
                bucket["bytes"],
            )
        table.add_note(
            "stale = stored code version no longer matches the hash derived "
            "from the experiment's solver modules; evict with 'kecss cache gc'"
        )
        print(table.to_text())
    elif args.action == "gc":
        removed = cache_gc(cache_dir)
        print(f"evicted {len(removed)} stale entr{'y' if len(removed) == 1 else 'ies'} "
              f"from {cache_dir}")
    else:  # clear
        removed = cache_clear(cache_dir)
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {cache_dir}")
    return 0


def _history(args: argparse.Namespace) -> int:
    from repro.store import StoreError, history_drilldown, history_table

    if args.by is not None and args.metric is None:
        raise SystemExit("--by requires --metric (the metric to drill into)")
    store = _open_store(_store_dir_from(args, required=True), create=False)
    try:
        if args.metric is not None:
            table = history_drilldown(
                store, args.experiment_id, args.metric, by=args.by
            )
        else:
            table = history_table(store, args.experiment_id)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(table.to_markdown() if args.markdown else table.to_text())
    return 0


def _worker(args: argparse.Namespace) -> int:
    from repro.analysis.cluster.protocol import (
        SECRET_ENV,
        AuthenticationError,
        ConnectionClosed,
        secret_from_env,
    )
    from repro.analysis.cluster.worker import run_worker

    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"--connect expects HOST:PORT, got {args.connect!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(
            f"--connect has a non-numeric port: {args.connect!r}"
        ) from None
    secret = secret_from_env()
    if not secret:
        print(f"worker: {SECRET_ENV} is not set; export the coordinator's "
              f"shared secret before connecting", file=sys.stderr)
        return 2
    try:
        stats = run_worker(
            host,
            port,
            secret=secret,
            name=args.name,
            capacity=args.capacity,
            connect_timeout=args.connect_timeout,
        )
    except (AuthenticationError, ConnectionClosed) as exc:
        # Reached the coordinator but was turned away (bad secret, protocol
        # mismatch, ...): surface the rejection instead of a clean exit.
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"worker: cannot reach coordinator at {args.connect}: {exc}",
              file=sys.stderr)
        return 1
    print(f"worker {stats['name']}: computed {stats['computed']} item(s)",
          file=sys.stderr)
    return 0


def _regress(args: argparse.Namespace) -> int:
    from repro.store import StoreError, regress

    store = _open_store(_store_dir_from(args, required=True), create=False)
    try:
        exit_code, lines = regress(
            store,
            args.experiment_id,
            tolerance=args.tolerance,
            duration_tolerance=args.duration_tolerance,
        )
    except StoreError as exc:
        # E.g. a corrupt run manifest: an operational error, not drift.
        raise SystemExit(str(exc))
    for line in lines:
        print(line)
    return exit_code


def _store_cmd(args: argparse.Namespace) -> int:
    from repro.store import StoreError, import_baseline_file

    store_dir = _store_dir_from(args, required=True)
    if args.repair and args.action != "fsck":
        raise SystemExit("--repair only applies to store fsck")
    if args.keep_last is not None and args.action != "gc":
        raise SystemExit("--keep-last only applies to store gc")
    if args.action == "import":
        if not args.paths:
            raise SystemExit("store import needs at least one BENCH_*.json path")
        store = _open_store(store_dir, create=True)
        for path in args.paths:
            try:
                info = import_baseline_file(store, path)
            except StoreError as exc:
                raise SystemExit(str(exc))
            print(
                f"imported {path} as {info.run_id} "
                f"({info.trial_count} trials, version {info.code_version})"
            )
        return 0
    if args.paths:
        raise SystemExit(f"store {args.action} takes no positional arguments")
    if args.action == "fsck":
        store = _open_store(store_dir, create=False)
        findings = store.fsck(repair=args.repair)
        if not findings:
            print(f"store at {store_dir} is clean")
            return 0
        for finding in findings:
            status = "quarantined" if finding.repaired and finding.kind != "stray-tmp" \
                else ("removed" if finding.repaired else "found")
            print(f"{status} {finding.kind} in {finding.segment}: {finding.detail}")
        if args.repair:
            quarantined = sum(
                1 for f in findings if f.repaired and f.kind != "stray-tmp"
            )
            print(
                f"fsck: {len(findings)} finding(s); {quarantined} segment(s) "
                f"moved to {store_dir}/quarantine"
            )
        else:
            print(f"fsck: {len(findings)} finding(s); re-run with --repair "
                  f"to quarantine")
        return 1
    if args.action == "gc":
        if args.keep_last is None:
            raise SystemExit("store gc needs --keep-last N (N >= 1)")
        if args.keep_last < 1:
            raise SystemExit(f"--keep-last must be >= 1, got {args.keep_last}")
        store = _open_store(store_dir, create=False)
        try:
            removed = store.gc(args.keep_last)
        except StoreError as exc:
            raise SystemExit(str(exc))
        for info in removed:
            print(f"removed {info.run_id} ({info.experiment}, "
                  f"{info.trial_count} trials)")
        print(f"gc: removed {len(removed)} run(s), kept the newest "
              f"{args.keep_last} per experiment")
        return 0
    # ls
    store = _open_store(store_dir, create=False)
    try:
        runs = store.runs()
    except StoreError as exc:
        raise SystemExit(str(exc))
    if not runs:
        print(f"store at {store_dir} holds no runs")
        return 0
    table = Table(
        title=f"trial store at {store_dir}",
        columns=["run", "experiment", "code version", "trials", "source"],
    )
    for info in runs:
        table.add_row(
            info.run_id,
            info.experiment,
            info.code_version,
            info.trial_count,
            info.provenance.get("source") or "-",
        )
    print(table.to_text())
    return 0


def _lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        RULES,
        default_package_dir,
        load_baseline,
        render_json,
        render_text,
        run_lint,
    )
    from repro.lint import write_baseline as write_lint_baseline

    if args.list_rules:
        table = Table(
            title="registered lint rules",
            columns=["code", "scope", "title"],
        )
        for code in sorted(RULES):
            rule = RULES[code]
            table.add_row(code, rule.scope, rule.title)
        table.add_note("rationales and the suppression/baseline workflow: docs/lint.md")
        print(table.to_text())
        return 0

    if args.root is not None:
        root = Path(args.root)
        package_dir = root / "src" / "repro"
        if not package_dir.is_dir():
            print(f"no package tree at {package_dir} (expected <root>/src/repro)",
                  file=sys.stderr)
            return 2
    else:
        package_dir = default_package_dir()
        root = package_dir.parent.parent

    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        if not select:
            print(f"--select {args.select!r} names no rules", file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline) if args.baseline else root / "lint-baseline.json"
    baseline: dict = {}
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = load_baseline(baseline_path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
                return 2
        elif args.baseline is not None:
            # An explicitly named baseline must exist; the default is optional.
            print(f"baseline file {baseline_path} does not exist", file=sys.stderr)
            return 2

    try:
        result = run_lint(package_dir, select=select, baseline=baseline)
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_lint_baseline(baseline_path, result.findings)
        print(f"wrote {baseline_path} ({count} finding"
              f"{'' if count == 1 else 's'} grandfathered)")
        return 0

    if args.output_format == "json":
        print(render_json(result.new, result.baselined))
    else:
        print(render_text(result.new, result.baselined))
    return result.exit_code


def _trace(args: argparse.Namespace) -> int:
    """Render a recorded trace.  Exit 0: parsed and summarized; 1: the file
    is unreadable or holds no valid events; 2: usage (argparse)."""
    from repro.obs.timeline import (
        TraceError,
        load_trace,
        render_chrome,
        render_json,
        render_text,
        summarize,
    )

    try:
        events, skipped = load_trace(args.path)
        if args.output_format == "chrome":
            rendering = render_chrome(events)
        else:
            summary = summarize(events, skipped=skipped)
            rendering = (
                render_json(summary) if args.output_format == "json"
                else render_text(summary)
            )
    except TraceError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        try:
            Path(args.out).write_text(rendering + "\n", encoding="utf-8")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out!r}: {exc}")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendering)
    return 0


def _families(_: argparse.Namespace) -> int:
    table = Table(
        title="registered graph families",
        columns=["family", "k>=", "weighted", "n=48 builds", "description"],
    )
    for name in sorted(FAMILIES):
        family = FAMILIES[name]
        graph = family(48, seed=0)
        table.add_row(
            name,
            family.connectivity,
            "yes" if family.weighted else "no",
            f"{graph.number_of_nodes()}v/{graph.number_of_edges()}e",
            family.description,
        )
    table.add_note(
        "'n=48 builds' shows the default size scaling: the instance a builder "
        "returns when asked for ~48 vertices (torus and hypercube round to "
        "their lattice sizes)"
    )
    print(table.to_text())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.obs.logs import configure_logging

    try:
        configure_logging(args.log_level)
    except ValueError as exc:
        parser.error(str(exc))  # exits 2, the argparse usage convention
    handlers = {
        "solve": _solve,
        "verify": _verify,
        "experiment": _experiment,
        "bench": _bench,
        "cache": _cache,
        "families": _families,
        "history": _history,
        "regress": _regress,
        "store": _store_cmd,
        "worker": _worker,
        "lint": _lint,
        "trace": _trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
