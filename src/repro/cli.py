"""Command line interface: ``kecss solve | verify | experiment | families``.

Examples::

    kecss solve --family weighted-sparse --n 32 --k 2 --seed 1
    kecss experiment --id e3
    kecss families
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis import experiments as experiment_module
from repro.core.k_ecss import k_ecss
from repro.core.three_ecss import three_ecss
from repro.core.two_ecss import two_ecss
from repro.graphs.generators import FAMILIES, make_family

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "e1": experiment_module.experiment_e1_two_ecss_approximation,
    "e2": experiment_module.experiment_e2_two_ecss_rounds,
    "e3": experiment_module.experiment_e3_tap_iterations,
    "e4": experiment_module.experiment_e4_k_ecss,
    "e5": experiment_module.experiment_e5_three_ecss_rounds,
    "e6": experiment_module.experiment_e6_decomposition,
    "e7": experiment_module.experiment_e7_cycle_space,
    "e8": experiment_module.experiment_e8_augmentation_invariants,
    "e9": experiment_module.experiment_e9_voting_ablation,
    "e10": experiment_module.experiment_e10_schedule_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="kecss",
        description="Distributed approximation of minimum k-ECSS (Dory, PODC 2018) - reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run a solver on a generated instance")
    solve.add_argument("--family", default="weighted-sparse", choices=sorted(FAMILIES))
    solve.add_argument("--n", type=int, default=32, help="approximate number of vertices")
    solve.add_argument("--k", type=int, default=2, help="target edge connectivity")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--algorithm",
        choices=["auto", "2ecss", "kecss", "3ecss"],
        default="auto",
        help="auto picks 2ecss for k=2, 3ecss for unweighted k=3, kecss otherwise",
    )
    solve.add_argument("--json", action="store_true", help="print machine-readable output")

    verify = subparsers.add_parser("verify", help="verify an edge list against an instance")
    verify.add_argument("--family", default="weighted-sparse", choices=sorted(FAMILIES))
    verify.add_argument("--n", type=int, default=32)
    verify.add_argument("--k", type=int, default=2)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "edges", help="JSON list of [u, v] pairs, or '-' to read it from stdin"
    )

    experiment = subparsers.add_parser("experiment", help="run one of the E1..E10 experiments")
    experiment.add_argument("--id", dest="experiment_id", default="all",
                            choices=["all", *sorted(_EXPERIMENTS)])
    experiment.add_argument("--markdown", action="store_true", help="emit Markdown tables")

    subparsers.add_parser("families", help="list the registered graph families")
    return parser


def _solve(args: argparse.Namespace) -> int:
    family = make_family(args.family)
    graph = family(args.n, seed=args.seed)
    algorithm = args.algorithm
    if algorithm == "auto":
        if args.k == 2:
            algorithm = "2ecss"
        elif args.k == 3 and not family.weighted:
            algorithm = "3ecss"
        else:
            algorithm = "kecss"
    if algorithm == "2ecss":
        result = two_ecss(graph, seed=args.seed)
    elif algorithm == "3ecss":
        result = three_ecss(graph, seed=args.seed)
    else:
        result = k_ecss(graph, args.k, seed=args.seed)
    ok, reason = result.verify()
    if args.json:
        print(json.dumps({
            "algorithm": result.algorithm,
            "n": graph.number_of_nodes(),
            "m": graph.number_of_edges(),
            "k": result.k,
            "weight": result.weight,
            "edges": sorted([list(edge) for edge in result.edges]),
            "rounds": result.rounds,
            "iterations": result.iterations,
            "valid": ok,
        }))
    else:
        print(f"algorithm     : {result.algorithm}")
        print(f"instance      : {args.family}, n={graph.number_of_nodes()}, "
              f"m={graph.number_of_edges()}")
        print(f"k             : {result.k}")
        print(f"weight        : {result.weight}")
        print(f"edges         : {result.num_edges}")
        print(f"iterations    : {result.iterations}")
        print(f"verified      : {ok}{'' if ok else ' (' + reason + ')'}")
        print(result.ledger.summary())
    return 0 if ok else 1


def _verify(args: argparse.Namespace) -> int:
    family = make_family(args.family)
    graph = family(args.n, seed=args.seed)
    raw = sys.stdin.read() if args.edges == "-" else args.edges
    edges = [tuple(edge) for edge in json.loads(raw)]
    from repro.graphs.connectivity import verify_spanning_subgraph

    ok, reason = verify_spanning_subgraph(graph, edges, args.k)
    print("OK" if ok else f"INVALID: {reason}")
    return 0 if ok else 1


def _experiment(args: argparse.Namespace) -> int:
    if args.experiment_id == "all":
        tables = experiment_module.all_experiments()
    else:
        tables = [_EXPERIMENTS[args.experiment_id]()]
    for table in tables:
        print(table.to_markdown() if args.markdown else table.to_text())
        print()
    return 0


def _families(_: argparse.Namespace) -> int:
    for name in sorted(FAMILIES):
        family = FAMILIES[name]
        print(f"{name:<24s} k>={family.connectivity}  weighted={family.weighted}  "
              f"{family.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "solve": _solve,
        "verify": _verify,
        "experiment": _experiment,
        "families": _families,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
